// Request-scoped observability for the serving layer: the tracing
// middleware every /v1 planning route runs under, and the /debug
// endpoints that expose what it records.
//
// Each request gets a trace ID — accepted from a sane X-Trace-Id header
// or generated — and a span tree rooted at the route's handler. When the
// handler returns, the middleware closes the root span, matches the
// latency against the route's SLO, appends a Record (with the full span
// snapshot) to the flight recorder, and writes one structured JSON log
// line. The trace ID is echoed in the X-Trace-Id response header, so a
// caller holding a slow response can go straight to
// /debug/flightrec?trace=<id>.
package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"looppart"
	"looppart/internal/obs"
	"looppart/internal/plancache"
)

// statusWriter captures the response status code and body size for the
// request record.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// traced wraps a planning handler in the observability envelope. The
// root span is named after the route ("/v1/plan" → "server.plan");
// handlers and the layers below them attach child spans and stamp the
// root's cache / key / error attributes through the request context.
func (s *Server) traced(route string, h http.HandlerFunc) http.HandlerFunc {
	root := "server." + strings.ReplaceAll(strings.TrimPrefix(route, "/v1/"), "/", ".")
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(obs.SanitizeID(r.Header.Get("X-Trace-Id")), root)
		ctx := obs.WithTrace(r.Context(), tr)
		w.Header().Set("X-Trace-Id", tr.ID())
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		lat := time.Since(start)
		if sw.status == 0 {
			// Handler wrote nothing (nothing to say = success).
			sw.status = http.StatusOK
		}
		rootSp := tr.Root()
		rootSp.SetAttr("status", sw.status)
		rootSp.End()

		breached, _ := s.cfg.SLO.Observe(route, lat, tr.ID())
		rec := &obs.Record{
			TraceID:   tr.ID(),
			Route:     route,
			Status:    sw.status,
			Start:     start,
			LatencyNs: lat.Nanoseconds(),
			SLOBreach: breached,
			Spans:     rootSp.Snapshot(),
		}
		if v, ok := rootSp.Attr("cache").(string); ok {
			rec.Cache = v
		}
		if v, ok := rootSp.Attr("key").(string); ok {
			rec.Key = v
		}
		if v, ok := rootSp.Attr("error").(string); ok {
			rec.Error = v
		}
		rec.DroppedSpans, rec.DroppedAttrs = tr.Dropped()
		s.cfg.Recorder.Add(rec)
		obs.LogRecord(s.cfg.Logger, rec)
	}
}

// fail records the error on the request's root span (so the flight
// record carries it) and writes the JSON error response.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, code int, msg string) {
	if sp := obs.TraceFrom(r.Context()).Root(); sp != nil {
		sp.SetAttr("error", msg)
	}
	writeError(w, code, msg)
}

// flightrecResponse frames GET /debug/flightrec.
type flightrecResponse struct {
	Stats   obs.RecorderStats `json:"stats"`
	Matched int               `json:"matched"`
	Records []*obs.Record     `json:"records"`
}

// handleFlightrec dumps the flight recorder, newest first. Filters:
// ?trace=<id> (exact), ?key=<substr>, ?status=<code>, ?class=<n> (5 =
// 500..599), ?min_latency=<duration>, ?breach=1, ?n=<limit>.
func (s *Server) handleFlightrec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	f := obs.Filter{
		TraceID:    q.Get("trace"),
		Key:        q.Get("key"),
		BreachOnly: q.Get("breach") == "1",
	}
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad status filter: "+v)
			return
		}
		f.Status = n
	}
	if v := q.Get("class"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad class filter: "+v)
			return
		}
		f.StatusClass = n
	}
	if v := q.Get("min_latency"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad min_latency filter: "+v)
			return
		}
		f.MinLatency = d
	}
	limit := 0
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad n: "+v)
			return
		}
		limit = n
	}

	resp := flightrecResponse{Stats: s.cfg.Recorder.Stats(), Records: []*obs.Record{}}
	for _, rec := range s.cfg.Recorder.Records() {
		if !f.Match(rec) {
			continue
		}
		resp.Matched++
		if limit == 0 || len(resp.Records) < limit {
			resp.Records = append(resp.Records, rec)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// debugCacheResponse frames GET /debug/cache: the plan cache's byte
// occupancy and top-K hot keys, plus the live singleflight flights with
// their coalesced-waiter counts.
type debugCacheResponse struct {
	Cache   plancache.Stats        `json:"cache"`
	TopKeys []plancache.KeyStat    `json:"top_keys"`
	Flights []plancache.FlightInfo `json:"flights"`
	Service looppart.ServiceStats  `json:"service"`
}

// defaultTopKeys is how many hot keys /debug/cache lists without ?top=.
const defaultTopKeys = 16

func (s *Server) handleDebugCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	k := defaultTopKeys
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad top: "+v)
			return
		}
		k = n
	}
	st := s.cfg.Service.Stats()
	resp := debugCacheResponse{
		Cache:   st.Cache,
		TopKeys: s.cfg.Service.TopKeys(k),
		Flights: s.cfg.Service.Flights(),
		Service: st,
	}
	if resp.TopKeys == nil {
		resp.TopKeys = []plancache.KeyStat{}
	}
	if resp.Flights == nil {
		resp.Flights = []plancache.FlightInfo{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// sloResponse frames GET /debug/slo.
type sloResponse struct {
	Routes []obs.RouteStatus `json:"routes"`
}

func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	routes := s.cfg.SLO.Status()
	if routes == nil {
		routes = []obs.RouteStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sloResponse{Routes: routes})
}
