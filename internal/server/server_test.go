package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"looppart"
	"looppart/internal/telemetry"
)

const testNest = `
doall (i, 1, 64)
  doall (j, 1, 64)
    A[i,j] = B[i,j] + B[i+1,j+3]
  enddoall
enddoall
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Service == nil {
		cfg.Service = looppart.NewService(looppart.ServiceOptions{})
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.New()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func planBody(strategy string, procs int) []byte {
	req := looppart.PlanRequest{Source: testNest, Procs: procs, Strategy: strategy}
	b, _ := json.Marshal(req)
	return b
}

func postPlan(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServerSingleflightConcurrentIdentical is the acceptance-criterion
// race test: K concurrent identical requests perform exactly one search,
// with the cache-hit counter accounting for the other K−1. A gate holds
// every request until all K are in flight, so they genuinely overlap.
func TestServerSingleflightConcurrentIdentical(t *testing.T) {
	const K = 8
	svc := looppart.NewService(looppart.ServiceOptions{})
	var barrier sync.WaitGroup
	barrier.Add(K)
	s, ts := newTestServer(t, Config{Service: svc, MaxInflight: K})
	s.testPlanGate = func() {
		barrier.Done()
		barrier.Wait()
	}

	body := planBody("rect", 16)
	bodies := make([][]byte, K)
	statuses := make([]string, K)
	var wg sync.WaitGroup
	wg.Add(K)
	for i := 0; i < K; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
			statuses[i] = resp.Header.Get("X-Plancache")
		}(i)
	}
	wg.Wait()

	st := svc.Stats()
	if st.Searches != 1 {
		t.Errorf("searches = %d, want exactly 1", st.Searches)
	}
	if st.CacheHits != K-1 {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, K-1)
	}
	misses := 0
	for i := range bodies {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs", i)
		}
		if statuses[i] == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d misses, want 1 (statuses %v)", misses, statuses)
	}
}

// TestServerShedsLoad: with one in-flight slot occupied, the next request
// is shed with 429 + Retry-After, and liveness stays reachable.
func TestServerShedsLoad(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	reg := telemetry.New()
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Service: svc, Registry: reg, MaxInflight: 1})
	s.testPlanGate = func() {
		started <- struct{}{}
		<-release
	}

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(planBody("rect", 16)))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-started // the only slot is now held

	resp, body := postPlan(t, ts.URL, planBody("rect", 16))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 lacks Retry-After")
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Errorf("healthz during saturation: %v %v", hz, err)
	}
	if hz != nil {
		hz.Body.Close()
	}

	close(release)
	if code := <-done; code != http.StatusOK {
		t.Errorf("held request finished with %d", code)
	}
	if n := reg.Snapshot().Counters["server.shed"]; n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}
}

// TestServerGracefulShutdownDrains: Shutdown waits for the in-flight plan
// to complete and the client still receives its 200.
func TestServerGracefulShutdownDrains(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	s := New(Config{Service: svc, Registry: telemetry.New(), MaxInflight: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	s.testPlanGate = func() {
		close(started)
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	url := "http://" + ln.Addr().String()
	reqDone := make(chan struct{})
	var code int
	var body []byte
	go func() {
		defer close(reqDone)
		resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(planBody("rect", 16)))
		if err != nil {
			t.Errorf("in-flight request: %v", err)
			return
		}
		defer resp.Body.Close()
		code = resp.StatusCode
		body, _ = io.ReadAll(resp.Body)
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()
	// Shutdown must not kill the in-flight request: give it a moment,
	// then release the plan and expect both to finish cleanly.
	select {
	case <-reqDone:
		t.Fatal("request finished before release — gate broken")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	<-reqDone
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"rendered"`)) {
		t.Errorf("drained request: status %d body %s", code, body)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve: %v", err)
	}
}

func TestServerHitIsByteIdentical(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	_, ts := newTestServer(t, Config{Service: svc})

	body := planBody("rect", 16)
	resp1, data1 := postPlan(t, ts.URL, body)
	resp2, data2 := postPlan(t, ts.URL, body)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp1.Header.Get("X-Plancache"); got != "miss" {
		t.Errorf("first X-Plancache = %q", got)
	}
	if got := resp2.Header.Get("X-Plancache"); got != "hit" {
		t.Errorf("second X-Plancache = %q", got)
	}
	if !bytes.Equal(data1, data2) {
		t.Errorf("responses differ:\n%s\nvs\n%s", data1, data2)
	}
	var res looppart.PlanResult
	if err := json.Unmarshal(data1, &res); err != nil {
		t.Fatalf("response not a PlanResult: %v", err)
	}
	if res.Rendered == "" || res.Kind != "tile" {
		t.Errorf("result = %+v", res)
	}
}

// TestServerCommSets: ?commsets=1 wraps the untouched canonical plan
// bytes with the on-demand communication certificate; a RAW nest gets a
// nonzero word count and the plain response stays free of the field.
func TestServerCommSets(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const rawNest = `
doall (i, 1, 64)
  doall (j, 1, 64)
    A[i,j] = A[i+1,j+3] + 1
  enddoall
enddoall
`
	body, _ := json.Marshal(looppart.PlanRequest{Source: rawNest, Procs: 16, Strategy: "rect"})
	_, plain := postPlan(t, ts.URL, body)
	if bytes.Contains(plain, []byte(`"comm"`)) {
		t.Fatalf("default response carries a comm field:\n%s", plain)
	}
	resp, err := http.Post(ts.URL+"/v1/plan?commsets=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var cr commResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cr.Result, plain) {
		t.Errorf("envelope changed the canonical bytes:\n%s\nvs\n%s", cr.Result, plain)
	}
	if cr.Comm == nil || cr.Comm.Words <= 0 {
		t.Errorf("comm summary = %+v", cr.Comm)
	}
}

// TestServerCommSetsOptIn: a service constructed with CommSets attaches
// the summary to the canonical bytes themselves, hits included.
func TestServerCommSetsOptIn(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{CommSets: true})
	_, ts := newTestServer(t, Config{Service: svc})
	body := planBody("rect", 16)
	_, miss := postPlan(t, ts.URL, body)
	_, hit := postPlan(t, ts.URL, body)
	if !bytes.Equal(miss, hit) {
		t.Fatalf("hit differs from miss:\n%s\nvs\n%s", miss, hit)
	}
	var res looppart.PlanResult
	if err := json.Unmarshal(miss, &res); err != nil {
		t.Fatal(err)
	}
	if res.Comm == nil {
		t.Fatalf("opt-in service served no comm summary: %s", miss)
	}
}

func TestServerExplain(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/plan?explain=1", "application/json", bytes.NewReader(planBody("rect", 16)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er explainResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Trace, "partition.rect.chosen") {
		t.Errorf("trace lacks chosen event:\n%s", er.Trace)
	}
	var res looppart.PlanResult
	if err := json.Unmarshal(er.Result, &res); err != nil || res.Rendered == "" {
		t.Errorf("explain result malformed: %v %+v", err, res)
	}
}

func TestServerBatch(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	_, ts := newTestServer(t, Config{Service: svc})

	// Four items: three identical (collapse to one search) and one bad.
	good := looppart.PlanRequest{Source: testNest, Procs: 16, Strategy: "rect"}
	bad := looppart.PlanRequest{Source: testNest, Procs: 16, Strategy: "nope"}
	body, _ := json.Marshal(batchRequest{Requests: []looppart.PlanRequest{good, good, good, bad}})
	resp, err := http.Post(ts.URL+"/v1/plan/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br batchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Responses) != 4 {
		t.Fatalf("%d responses", len(br.Responses))
	}
	for i := 0; i < 3; i++ {
		if br.Responses[i].Error != "" || !bytes.Equal(br.Responses[i].Result, br.Responses[0].Result) {
			t.Errorf("item %d: %+v", i, br.Responses[i])
		}
	}
	if !strings.Contains(br.Responses[3].Error, "unknown strategy") {
		t.Errorf("bad item error = %q", br.Responses[3].Error)
	}
	if st := svc.Stats(); st.Searches != 1 {
		t.Errorf("batch ran %d searches, want 1", st.Searches)
	}
}

func TestServerRejectsMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})

	get, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan = %d", get.StatusCode)
	}

	resp, _ := postPlan(t, ts.URL, []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d", resp.StatusCode)
	}

	big, _ := json.Marshal(looppart.PlanRequest{Source: strings.Repeat("x", 2048), Procs: 4})
	resp, _ = postPlan(t, ts.URL, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body = %d", resp.StatusCode)
	}

	resp, body := postPlan(t, ts.URL, planBody("nope", 16))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown strategy = %d (%s)", resp.StatusCode, body)
	}

	resp, _ = postPlan(t, ts.URL, planBody("rect", 0))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("procs 0 = %d", resp.StatusCode)
	}

	empty, _ := json.Marshal(batchRequest{})
	br, err := http.Post(ts.URL+"/v1/plan/batch", "application/json", bytes.NewReader(empty))
	if err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch = %d", br.StatusCode)
	}
}

func TestServerMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if _, data := postPlan(t, ts.URL, planBody("rect", 16)); len(data) == 0 {
		t.Fatal("empty plan response")
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzBody, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != 200 || !strings.Contains(string(hzBody), `"ok"`) {
		t.Errorf("healthz: %d %s", hz.StatusCode, hzBody)
	}

	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mBody, _ := io.ReadAll(m.Body)
	m.Body.Close()
	for _, want := range []string{"server_requests 1", "plancache_hit_ratio", "service_searches 1"} {
		if !strings.Contains(string(mBody), want) {
			t.Errorf("metrics lack %q:\n%s", want, mBody)
		}
	}
}

// TestServerTimeoutStillFillsCache: a request whose deadline expires gets
// 503, but the search it started completes and serves the next request
// from the cache.
func TestServerTimeoutStillFillsCache(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	s := New(Config{Service: svc, Registry: telemetry.New(), PlanTimeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The skewed search over a 3-D space is comfortably slower than the
	// 1ns budget.
	req := looppart.PlanRequest{
		Source: "doall (i, 1, 64)\n doall (j, 1, 64)\n  doall (k, 1, 64)\n   A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]\n  enddoall\n enddoall\nenddoall",
		Procs:  64, Strategy: "skewed",
	}
	body, _ := json.Marshal(req)
	resp, data := postPlan(t, ts.URL, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, data)
	}

	// The detached search finishes and fills the cache; wait for it, then
	// a fresh server with a sane timeout serves a hit.
	deadline := time.Now().Add(10 * time.Second)
	for svc.CacheStats().Entries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("search never filled the cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s2 := New(Config{Service: svc, Registry: telemetry.New()})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, _ := postPlan(t, ts2.URL, body)
	if resp2.Header.Get("X-Plancache") != "hit" {
		t.Errorf("post-timeout request = %q, want hit", resp2.Header.Get("X-Plancache"))
	}
}

func TestServerDefaultsApplied(t *testing.T) {
	s := New(Config{Service: looppart.NewService(looppart.ServiceOptions{})})
	if cap(s.sem) <= 0 || s.cfg.PlanTimeout <= 0 || s.cfg.MaxBodyBytes <= 0 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}

func ExampleNew() {
	svc := looppart.NewService(looppart.ServiceOptions{})
	s := New(Config{Service: svc, Registry: telemetry.New()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(looppart.PlanRequest{
		Source: "doall (i, 1, 100)\n doall (j, 1, 100)\n  A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3]\n enddoall\nenddoall",
		Procs:  100,
	})
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var res looppart.PlanResult
	json.NewDecoder(resp.Body).Decode(&res)
	fmt.Println(res.Rendered)
	// Output:
	// comm-free plan for 100 procs: slabs normal=[0 1] width=1 commfree=true
}
