package server

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"looppart"
	"looppart/internal/cluster"
	"looppart/internal/obs"
	"looppart/internal/telemetry"
)

// fleetReplica is one member of an in-process test fleet: a full server
// stack with a peer-fill client over the shared ring.
type fleetReplica struct {
	member string
	svc    *looppart.Service
	client *cluster.Client
	srv    *Server
	ts     *httptest.Server
}

// newTestFleet boots n replicas wired into one consistent-hash ring,
// the same topology cmd/looppartd builds from -peers. Listeners are
// bound before any server starts so every member name is known up
// front.
func newTestFleet(t *testing.T, n int, recorder *obs.Recorder) []*fleetReplica {
	t.Helper()
	reps := make([]*fleetReplica, n)
	members := make([]string, n)
	for i := range reps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = &fleetReplica{member: cluster.MemberName(ln.Addr().String())}
		members[i] = reps[i].member
		reps[i].ts = &httptest.Server{Listener: ln}
	}
	for i, r := range reps {
		r.client = cluster.New(cluster.Options{Self: r.member, Members: members})
		r.svc = looppart.NewService(looppart.ServiceOptions{PeerFill: r.client})
		cfg := Config{Service: r.svc, Registry: telemetry.New(), Cluster: r.client}
		if i == 0 && recorder != nil {
			cfg.Recorder = recorder
		}
		r.srv = New(cfg)
		r.ts.Config = &http.Server{Handler: r.srv.Handler()}
		r.ts.Start()
		t.Cleanup(r.ts.Close)
	}
	return reps
}

// ownedBody returns a plan request body whose canonical key is owned by
// owner on ring, found by scanning processor counts.
func ownedBody(t *testing.T, ring *cluster.Ring, owner string) []byte {
	t.Helper()
	prog, err := looppart.Parse(testNest, nil)
	if err != nil {
		t.Fatal(err)
	}
	for procs := 2; procs < 512; procs++ {
		key := looppart.CanonicalKey(prog, procs, looppart.Rect)
		if ring.Owner(key) == owner {
			return planBody("rect", procs)
		}
	}
	t.Fatalf("no procs count in [2,512) maps to owner %s", owner)
	return nil
}

// TestClusterSingleSearchFleetWide is the clustering acceptance test:
// K concurrent misses for one key, spread across every replica of a
// 3-member fleet, perform exactly one search fleet-wide — the local
// duplicates collapse in each replica's singleflight, the cross-replica
// duplicates collapse in the key owner's — and every response is
// byte-identical no matter which replica served it.
func TestClusterSingleSearchFleetWide(t *testing.T) {
	const K = 9
	reps := newTestFleet(t, 3, nil)
	// Gate the /v1/plan handlers so all K requests are genuinely in
	// flight together. Peer fills (/v1/peer/plan) bypass the gate: the
	// owner must be able to answer while the gated requests overlap.
	var barrier sync.WaitGroup
	barrier.Add(K)
	gate := func() {
		barrier.Done()
		barrier.Wait()
	}
	for _, r := range reps {
		r.srv.testPlanGate = gate
	}

	body := planBody("rect", 16)
	bodies := make([][]byte, K)
	var wg sync.WaitGroup
	wg.Add(K)
	for i := 0; i < K; i++ {
		go func(i int) {
			defer wg.Done()
			resp, data := postPlan(t, reps[i%len(reps)].ts.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			bodies[i] = data
		}(i)
	}
	wg.Wait()

	var fleetSearches int64
	for i, r := range reps {
		st := r.svc.Stats()
		fleetSearches += st.Searches
		t.Logf("replica %d: %d searches, %d peer hits, %d cache hits", i, st.Searches, st.PeerHits, st.CacheHits)
	}
	if fleetSearches != 1 {
		t.Errorf("fleet searched %d times, want exactly 1", fleetSearches)
	}
	for i := range bodies {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs across replicas", i)
		}
	}
}

// TestClusterOwnerCrashFallsBackToLocalSearch kills the key-owner
// replica mid-fleet: the surviving replica's peer fill fails and its
// local search serves the request anyway.
func TestClusterOwnerCrashFallsBackToLocalSearch(t *testing.T) {
	reps := newTestFleet(t, 2, nil)
	// A key owned by replica 1, requested from replica 0 after 1 dies.
	body := ownedBody(t, reps[0].client.Ring(), reps[1].member)
	reps[1].ts.Close()

	resp, data := postPlan(t, reps[0].ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Plancache"); got != "miss" {
		t.Errorf("X-Plancache = %q, want miss (local fallback search)", got)
	}
	st := reps[0].svc.Stats()
	if st.Searches != 1 || st.PeerFallbacks != 1 || st.PeerHits != 0 {
		t.Errorf("stats = %d searches, %d fallbacks, %d peer hits; want 1, 1, 0",
			st.Searches, st.PeerFallbacks, st.PeerHits)
	}
}

// TestClusterPeerFillServesOwnerBytes drives the happy path end to end:
// the owner replica searches once, the non-owner serves the same bytes
// with X-Plancache: peer, and its next request is a plain local hit.
func TestClusterPeerFillServesOwnerBytes(t *testing.T) {
	reps := newTestFleet(t, 2, nil)
	body := ownedBody(t, reps[0].client.Ring(), reps[1].member)

	ownerResp, ownerData := postPlan(t, reps[1].ts.URL, body)
	if ownerResp.StatusCode != http.StatusOK {
		t.Fatalf("owner: status %d: %s", ownerResp.StatusCode, ownerData)
	}
	peerResp, peerData := postPlan(t, reps[0].ts.URL, body)
	if peerResp.StatusCode != http.StatusOK {
		t.Fatalf("peer: status %d: %s", peerResp.StatusCode, peerData)
	}
	if got := peerResp.Header.Get("X-Plancache"); got != "peer" {
		t.Errorf("X-Plancache = %q, want peer", got)
	}
	if !bytes.Equal(ownerData, peerData) {
		t.Errorf("peer-filled body differs from the owner's")
	}
	again, againData := postPlan(t, reps[0].ts.URL, body)
	if got := again.Header.Get("X-Plancache"); got != "hit" {
		t.Errorf("second request X-Plancache = %q, want hit (fill admitted locally)", got)
	}
	if !bytes.Equal(againData, ownerData) {
		t.Errorf("local hit after fill differs from the owner's bytes")
	}
	if st := reps[0].svc.Stats(); st.Searches != 0 || st.PeerHits != 1 {
		t.Errorf("non-owner stats = %d searches, %d peer hits; want 0, 1", st.Searches, st.PeerHits)
	}
}

// TestClusterTraceJoinsPeerHop sends a request with an explicit trace
// ID to a non-owner replica and asserts the owner's flight recorder
// logged the peer hop under the same trace — one trace ID spanning the
// cross-replica miss.
func TestClusterTraceJoinsPeerHop(t *testing.T) {
	recorder := obs.NewRecorder(16)
	reps := newTestFleet(t, 2, recorder) // recorder attaches to replica 0
	body := ownedBody(t, reps[0].client.Ring(), reps[0].member)

	const traceID = "trace-peer-hop-test-1"
	req, err := http.NewRequest(http.MethodPost, reps[1].ts.URL+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Plancache"); got != "peer" {
		t.Fatalf("X-Plancache = %q, want peer (key chosen to be owned by the other replica)", got)
	}

	found := false
	for _, rec := range recorder.Records() {
		if rec.TraceID == traceID && rec.Route == cluster.PeerPlanPath {
			found = true
		}
	}
	if !found {
		t.Errorf("owner flight recorder has no %s record under trace %q", cluster.PeerPlanPath, traceID)
	}
}

// TestPeerPlanRejectsExcessHops is the forwarding-loop guard: a peer
// request claiming more hops than cluster.MaxHops is refused outright.
func TestPeerPlanRejectsExcessHops(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+cluster.PeerPlanPath, bytes.NewReader(planBody("rect", 8)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HopHeader, "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusLoopDetected {
		t.Errorf("hop 2 got status %d, want %d", resp.StatusCode, http.StatusLoopDetected)
	}
}

// TestQuotaRetryAfterRounding pins the Retry-After rounding on quota
// sheds: a sub-second wait must render at least 1 (0 tells the client to
// retry immediately into the same empty bucket), and a whole-second wait
// must round up without gaining a spare second.
func TestQuotaRetryAfterRounding(t *testing.T) {
	cases := []struct {
		name string
		rate float64
		want string
	}{
		// rate 2/s, burst 1: the over-quota wait is ~0.5s → ceil to 1.
		{"sub-second wait rounds up to 1", 2, "1"},
		// rate 0.25/s, burst 1: the wait is ~4s → exactly 4, not 5.
		{"whole-second wait keeps its ceiling", 0.25, "4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			quotas := cluster.NewQuotas(tc.rate, 1)
			_, ts := newTestServer(t, Config{Quotas: quotas})
			body := planBody("rect", 16)
			var shed *http.Response
			for i := 0; i < 2; i++ {
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Tenant", "burst")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				shed = resp
			}
			if shed.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("second request: status %d, want 429", shed.StatusCode)
			}
			if ra := shed.Header.Get("Retry-After"); ra != tc.want {
				t.Errorf("Retry-After = %q, want %q", ra, tc.want)
			}
		})
	}
}

// TestQuotaShedsOneTenantOnly exhausts one tenant's token bucket and
// asserts it sheds with 429 + Retry-After while another tenant — and
// the anonymous bucket — keep planning.
func TestQuotaShedsOneTenantOnly(t *testing.T) {
	// Effectively no refill within the test: 2-token bursts only.
	quotas := cluster.NewQuotas(0.0001, 2)
	_, ts := newTestServer(t, Config{Quotas: quotas})
	body := planBody("rect", 16)

	post := func(tenant string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := post("noisy"); resp.StatusCode != http.StatusOK {
			t.Fatalf("noisy request %d within burst: status %d", i, resp.StatusCode)
		}
	}
	shed := post("noisy")
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("noisy over burst: status %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	if resp := post("quiet"); resp.StatusCode != http.StatusOK {
		t.Errorf("quiet tenant shed alongside noisy: status %d", resp.StatusCode)
	}
	if resp := post(""); resp.StatusCode != http.StatusOK {
		t.Errorf("anonymous tenant shed alongside noisy: status %d", resp.StatusCode)
	}
	if st := quotas.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}

// TestHotTierServesHotStatus drives one key until the periodic rebuild
// pins it, then asserts it is served with X-Plancache: hot.
func TestHotTierServesHotStatus(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{HotKeys: 4, HotRebuildEvery: 1})
	_, ts := newTestServer(t, Config{Service: svc})
	body := planBody("rect", 16)

	var statuses []string
	var last string
	var first []byte
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := postPlan(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatalf("hot-tier response bytes differ from the original miss")
		}
		last = resp.Header.Get("X-Plancache")
		statuses = append(statuses, last)
		if last == "hot" {
			break
		}
	}
	if last != "hot" {
		t.Fatalf("never served hot (statuses %v)", statuses)
	}
	st := svc.Stats()
	if st.HotHits == 0 || st.Hot == nil || st.Hot.Entries == 0 {
		t.Errorf("stats after hot serve = %+v", st)
	}
}
