package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"looppart"
	"looppart/internal/obs"
	"looppart/internal/telemetry"
)

// syncBuffer is a concurrency-safe bytes.Buffer: the request logger
// writes from server goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitRecord polls the flight recorder for a trace's record. The
// middleware publishes the record after the response body is written, so
// the client can observe the response before the record lands.
func waitRecord(t *testing.T, rec *obs.Recorder, trace string) *obs.Record {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, r := range rec.Records() {
			if r.TraceID == trace {
				return r
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no flight record for trace %q", trace)
	return nil
}

// attrNum reads a numeric span attribute regardless of whether it
// arrived as a live int (in-process snapshot) or a float64 (JSON).
func attrNum(t *testing.T, sp *obs.SpanSnapshot, key string) float64 {
	t.Helper()
	if sp == nil {
		t.Fatalf("attrNum(%q): nil span", key)
	}
	switch v := sp.Attrs[key].(type) {
	case int:
		return float64(v)
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		t.Fatalf("span %q attr %q = %v (%T), want a number", sp.Name, key, v, v)
		return 0
	}
}

// TestServerObservabilityEndToEnd is the acceptance-criterion test: a
// slow ?verify=1 cache-miss request is reconstructable end-to-end from
// observability output alone — the trace ID appears in the structured
// log, in the /metrics exemplar, and in the /debug/flightrec record
// whose span tree shows cache-miss → singleflight-owner → search (with
// candidate counts) → store-persist → verify, with non-zero durations.
func TestServerObservabilityEndToEnd(t *testing.T) {
	const traceID = "e2e-trace-01"
	logBuf := &syncBuffer{}
	recorder := obs.NewRecorder(64)
	// A 1ns objective makes every request a breach, so the exemplar and
	// burn-rate paths are exercised deterministically.
	slo := obs.NewSLOTracker(obs.Objective{Route: "/v1/plan", Latency: time.Nanosecond, Target: 0.99})
	_, ts := newTestServer(t, Config{
		Service:  looppart.NewService(looppart.ServiceOptions{}),
		Registry: telemetry.New(),
		Logger:   obs.NewLogger(logBuf),
		Recorder: recorder,
		SLO:      slo,
	})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan?verify=1", bytes.NewReader(planBody("rect", 16)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Errorf("X-Trace-Id echoed %q, want %q", got, traceID)
	}
	if got := resp.Header.Get("X-Plancache"); got != "miss" {
		t.Errorf("X-Plancache = %q, want miss", got)
	}

	// 1. The flight record, through the HTTP endpoint (exact-trace filter).
	waitRecord(t, recorder, traceID)
	fr, err := http.Get(ts.URL + "/debug/flightrec?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	frBody, _ := io.ReadAll(fr.Body)
	fr.Body.Close()
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flightrec status %d: %s", fr.StatusCode, frBody)
	}
	var frResp flightrecResponse
	if err := json.Unmarshal(frBody, &frResp); err != nil {
		t.Fatalf("flightrec response: %v\n%s", err, frBody)
	}
	if frResp.Matched != 1 || len(frResp.Records) != 1 {
		t.Fatalf("matched %d records, want 1:\n%s", frResp.Matched, frBody)
	}
	rec := frResp.Records[0]
	if rec.Route != "/v1/plan" || rec.Status != 200 || rec.Cache != "miss" {
		t.Errorf("record route/status/cache = %q/%d/%q", rec.Route, rec.Status, rec.Cache)
	}
	if rec.Key == "" {
		t.Error("record lacks the canonical plan key")
	}
	if rec.LatencyNs <= 0 {
		t.Errorf("record latency = %d, want > 0", rec.LatencyNs)
	}
	if !rec.SLOBreach {
		t.Error("record not marked as SLO breach under a 1ns objective")
	}
	if rec.DroppedSpans != 0 || rec.DroppedAttrs != 0 {
		t.Errorf("drops = %d spans / %d attrs, want none", rec.DroppedSpans, rec.DroppedAttrs)
	}

	// 2. The span tree: cache-miss → singleflight-owner → search
	// (candidates evaluated/pruned) → store-persist → verify.
	root := rec.Spans
	if root == nil || root.Name != "server.plan" {
		t.Fatalf("root span = %+v, want server.plan", root)
	}
	if got := attrNum(t, root, "status"); got != 200 {
		t.Errorf("root status attr = %g", got)
	}
	chain := map[string]*obs.SpanSnapshot{}
	for _, name := range []string{"cache.lookup", "singleflight", "search", "search.rect", "store.persist", "verify"} {
		sp := root.Find(name)
		if sp == nil {
			t.Fatalf("span %q missing from tree:\n%s", name, frBody)
		}
		if sp.DurNs <= 0 {
			t.Errorf("span %q duration = %dns, want > 0", name, sp.DurNs)
		}
		chain[name] = sp
	}
	if got := chain["cache.lookup"].Attrs["outcome"]; got != "miss" {
		t.Errorf("cache.lookup outcome = %v, want miss", got)
	}
	if got := chain["singleflight"].Attrs["role"]; got != "owner" {
		t.Errorf("singleflight role = %v, want owner", got)
	}
	if got := chain["search"].Attrs["strategy"]; got != "rect" {
		t.Errorf("search strategy = %v, want rect", got)
	}
	if chain["singleflight"].Find("search") == nil {
		t.Error("search span is not nested under the singleflight span")
	}
	if got := attrNum(t, chain["search.rect"], "evaluated"); got <= 0 {
		t.Errorf("search.rect evaluated = %g, want > 0", got)
	}
	if _, ok := chain["search.rect"].Attrs["pruned"]; !ok {
		t.Error("search.rect lacks the pruned attribute")
	}
	if got := attrNum(t, chain["store.persist"], "bytes"); got <= 0 {
		t.Errorf("store.persist bytes = %g, want > 0", got)
	}
	if got := chain["verify"].Attrs["ok"]; got != true {
		t.Errorf("verify ok = %v, want true", got)
	}
	if got := attrNum(t, chain["verify"], "checks"); got <= 0 {
		t.Errorf("verify checks = %g, want > 0", got)
	}

	// 3. The structured log line, keyed by the same trace ID. The breach
	// makes it a WARN.
	var logged map[string]any
	sc := bufio.NewScanner(strings.NewReader(logBuf.String()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("log line not JSON: %v\n%s", err, sc.Text())
		}
		if line["trace_id"] == traceID {
			logged = line
		}
	}
	if logged == nil {
		t.Fatalf("no log line with trace_id %q:\n%s", traceID, logBuf.String())
	}
	if logged["route"] != "/v1/plan" || logged["cache"] != "miss" || logged["level"] != "WARN" {
		t.Errorf("log line route/cache/level = %v/%v/%v", logged["route"], logged["cache"], logged["level"])
	}
	if logged["slo_breach"] != true {
		t.Errorf("log line slo_breach = %v", logged["slo_breach"])
	}

	// 4. The /metrics exemplar comment names the same trace.
	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mBody, _ := io.ReadAll(m.Body)
	m.Body.Close()
	if ct := m.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	wantExemplar := fmt.Sprintf("# EXEMPLAR server_slo__v1_plan_breach trace_id=%q", traceID)
	for _, want := range []string{wantExemplar, "server_slo__v1_plan_burn_rate", "server_slo__v1_plan_p99_seconds"} {
		if !strings.Contains(string(mBody), want) {
			t.Errorf("metrics lack %q:\n%s", want, mBody)
		}
	}

	// 5. /debug/slo reports the breach with the exemplar, /debug/cache the
	// filled cache and hot key.
	sr, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	srBody, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	var sloResp sloResponse
	if err := json.Unmarshal(srBody, &sloResp); err != nil {
		t.Fatal(err)
	}
	if len(sloResp.Routes) != 1 || sloResp.Routes[0].Breached < 1 || sloResp.Routes[0].BurnRate <= 0 {
		t.Errorf("/debug/slo = %s", srBody)
	}
	if ex := sloResp.Routes[0].Exemplar; ex == nil || ex.TraceID != traceID {
		t.Errorf("/debug/slo exemplar = %+v, want trace %q", sloResp.Routes[0].Exemplar, traceID)
	}
	cr, err := http.Get(ts.URL + "/debug/cache")
	if err != nil {
		t.Fatal(err)
	}
	crBody, _ := io.ReadAll(cr.Body)
	cr.Body.Close()
	var cacheResp debugCacheResponse
	if err := json.Unmarshal(crBody, &cacheResp); err != nil {
		t.Fatal(err)
	}
	if cacheResp.Cache.Entries != 1 || cacheResp.Cache.Bytes <= 0 {
		t.Errorf("/debug/cache entries/bytes = %d/%d", cacheResp.Cache.Entries, cacheResp.Cache.Bytes)
	}
	if len(cacheResp.TopKeys) != 1 || cacheResp.TopKeys[0].Key != rec.Key {
		t.Errorf("/debug/cache top_keys = %+v, want key %q", cacheResp.TopKeys, rec.Key)
	}
}

// TestServerParallelTracesDisjoint (run under -race in CI): K parallel
// requests with distinct bodies produce K disjoint span trees — every
// record's key, root span, and search parameters match its own request,
// with no attribute bleed between concurrent traces.
func TestServerParallelTracesDisjoint(t *testing.T) {
	procs := []int{4, 9, 16, 25, 36, 49}
	K := len(procs)
	recorder := obs.NewRecorder(2 * K)
	_, ts := newTestServer(t, Config{
		Service:     looppart.NewService(looppart.ServiceOptions{}),
		Registry:    telemetry.New(),
		Recorder:    recorder,
		MaxInflight: K,
	})

	var wg sync.WaitGroup
	wg.Add(K)
	for i := 0; i < K; i++ {
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(planBody("rect", procs[i])))
			req.Header.Set("X-Trace-Id", fmt.Sprintf("par-trace-%d", i))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	seenKeys := map[string]string{}
	for i := 0; i < K; i++ {
		traceID := fmt.Sprintf("par-trace-%d", i)
		rec := waitRecord(t, recorder, traceID)
		if rec.Cache != "miss" {
			t.Errorf("trace %s: cache = %q, want miss (keys are distinct)", traceID, rec.Cache)
		}
		if prev, dup := seenKeys[rec.Key]; dup {
			t.Errorf("traces %s and %s share key %q", prev, traceID, rec.Key)
		}
		seenKeys[rec.Key] = traceID

		root := rec.Spans
		if root == nil || root.Name != "server.plan" {
			t.Fatalf("trace %s: root span %+v", traceID, root)
		}
		if got, _ := root.Attrs["key"].(string); got != rec.Key {
			t.Errorf("trace %s: root key attr %q != record key %q", traceID, got, rec.Key)
		}
		// Exactly one search, and it is this request's own: distinct keys
		// mean every request owns its flight, and the procs attribute must
		// match the body this trace sent — any other value would be bleed
		// from a sibling request.
		var searches int
		root.Walk(func(sp *obs.SpanSnapshot) {
			if sp.Name == "search" {
				searches++
				if got := attrNum(t, sp, "procs"); got != float64(procs[i]) {
					t.Errorf("trace %s: search procs = %g, want %d", traceID, got, procs[i])
				}
			}
		})
		if searches != 1 {
			t.Errorf("trace %s: %d search spans, want 1", traceID, searches)
		}
		if sf := root.Find("singleflight"); sf == nil || sf.Attrs["role"] != "owner" {
			t.Errorf("trace %s: singleflight span = %+v, want role owner", traceID, sf)
		}
	}
}

// TestServerCoalescedWaiterLinksOwner (run under -race in CI): K
// concurrent identical requests collapse onto one search; the K−1
// coalesced waiters' singleflight spans carry the owner's trace ID, so
// a waiter's flight record links to the trace that ran the search.
func TestServerCoalescedWaiterLinksOwner(t *testing.T) {
	const K = 8
	recorder := obs.NewRecorder(2 * K)
	var barrier sync.WaitGroup
	barrier.Add(K)
	s, ts := newTestServer(t, Config{
		Service:     looppart.NewService(looppart.ServiceOptions{}),
		Registry:    telemetry.New(),
		Recorder:    recorder,
		MaxInflight: K,
	})
	s.testPlanGate = func() {
		barrier.Done()
		barrier.Wait()
	}

	// The 3-D skewed search runs for hundreds of milliseconds, so the K−1
	// requests released by the barrier alongside the owner reliably join
	// its flight instead of finding the cache already filled.
	req := looppart.PlanRequest{
		Source: "doall (i, 1, 64)\n doall (j, 1, 64)\n  doall (k, 1, 64)\n   A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]\n  enddoall\n enddoall\nenddoall",
		Procs:  64, Strategy: "skewed",
	}
	body, _ := json.Marshal(req)
	var wg sync.WaitGroup
	wg.Add(K)
	for i := 0; i < K; i++ {
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
			req.Header.Set("X-Trace-Id", fmt.Sprintf("co-trace-%d", i))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	wg.Wait()

	var ownerTrace string
	records := make([]*obs.Record, 0, K)
	for i := 0; i < K; i++ {
		rec := waitRecord(t, recorder, fmt.Sprintf("co-trace-%d", i))
		records = append(records, rec)
		if rec.Cache == "miss" {
			if ownerTrace != "" {
				t.Errorf("two owners: %s and %s", ownerTrace, rec.TraceID)
			}
			ownerTrace = rec.TraceID
		}
	}
	if ownerTrace == "" {
		t.Fatal("no cache-miss record — no request owned the search")
	}
	for _, rec := range records {
		sf := rec.Spans.Find("singleflight")
		if sf == nil {
			t.Errorf("trace %s: no singleflight span", rec.TraceID)
			continue
		}
		if rec.TraceID == ownerTrace {
			if sf.Attrs["role"] != "owner" || sf.Find("search") == nil {
				t.Errorf("owner %s: role=%v, search span present=%v",
					rec.TraceID, sf.Attrs["role"], sf.Find("search") != nil)
			}
			continue
		}
		if rec.Cache != "dedup" {
			t.Errorf("trace %s: cache = %q, want dedup", rec.TraceID, rec.Cache)
		}
		if sf.Attrs["role"] != "waiter" {
			t.Errorf("waiter %s: role = %v", rec.TraceID, sf.Attrs["role"])
		}
		if got, _ := sf.Attrs["owner_trace"].(string); got != ownerTrace {
			t.Errorf("waiter %s: owner_trace = %q, want %q", rec.TraceID, got, ownerTrace)
		}
		// The waiter did not run the search; its tree must not contain one.
		if sf.Find("search") != nil {
			t.Errorf("waiter %s has a search span — attribute bleed from the owner", rec.TraceID)
		}
	}
}

// TestServerFlightrecFilters exercises the /debug/flightrec query
// surface over a mixed request history.
func TestServerFlightrecFilters(t *testing.T) {
	recorder := obs.NewRecorder(16)
	_, ts := newTestServer(t, Config{
		Service:  looppart.NewService(looppart.ServiceOptions{}),
		Registry: telemetry.New(),
		Recorder: recorder,
	})

	if resp, _ := postPlan(t, ts.URL, planBody("rect", 16)); resp.StatusCode != 200 {
		t.Fatalf("good request status %d", resp.StatusCode)
	}
	okTrace := ""
	if resp, _ := postPlan(t, ts.URL, planBody("nope", 16)); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad request status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(recorder.Records()) < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	for _, rec := range recorder.Records() {
		if rec.Status == 200 {
			okTrace = rec.TraceID
		}
	}
	if okTrace == "" {
		t.Fatal("no 200 record")
	}

	get := func(query string) flightrecResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/flightrec" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", query, resp.StatusCode)
		}
		var fr flightrecResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
		return fr
	}

	if fr := get(""); fr.Matched != 2 || fr.Stats.Recorded != 2 || fr.Stats.Capacity != 16 {
		t.Errorf("unfiltered: matched %d, stats %+v", fr.Matched, fr.Stats)
	}
	if fr := get("?status=422"); fr.Matched != 1 || fr.Records[0].Status != 422 {
		t.Errorf("status filter: %+v", fr)
	}
	if fr := get("?class=4"); fr.Matched != 1 {
		t.Errorf("class filter matched %d", fr.Matched)
	}
	if fr := get("?trace=" + okTrace); fr.Matched != 1 || fr.Records[0].TraceID != okTrace {
		t.Errorf("trace filter: %+v", fr)
	}
	if fr := get("?n=1"); fr.Matched != 2 || len(fr.Records) != 1 {
		t.Errorf("limit: matched %d, returned %d", fr.Matched, len(fr.Records))
	}
	if fr := get("?min_latency=10h"); fr.Matched != 0 {
		t.Errorf("min_latency filter matched %d", fr.Matched)
	}
	// The 422 record carries the error and no key.
	if fr := get("?status=422"); fr.Records[0].Error == "" {
		t.Error("422 record lacks the error attribute")
	}
	for _, bad := range []string{"?status=abc", "?class=x", "?min_latency=zzz", "?n=0"} {
		resp, err := http.Get(ts.URL + "/debug/flightrec" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
