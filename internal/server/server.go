// Package server exposes the partition-planning service over a stdlib
// net/http JSON API — the serving layer of cmd/looppartd.
//
// Endpoints:
//
//	POST /v1/plan        {source, params, procs, strategy} → PlanResult
//	                     (?explain=1 adds the decision trace; ?verify=1
//	                     re-validates the served plan and wraps it with
//	                     the self-check report, 500 on failure;
//	                     ?commsets=1 wraps it with the exact per-epoch
//	                     communication-set summary)
//	POST /v1/plan/batch  {requests: [...]} → {responses: [...]}
//	POST /v1/autotune    {source, params, procs, strategy} → tournament
//	                     result (predicted vs measured per candidate)
//	POST /v1/peer/plan   peer-fill endpoint (internal/cluster): same body
//	                     as /v1/plan, answered from this replica's caches
//	                     and search alone — never another peer hop — so a
//	                     fill is structurally one hop; X-Peer-Hop above
//	                     cluster.MaxHops is rejected as a loop guard
//	GET  /healthz        liveness probe
//	GET  /metrics        Prometheus text exposition of the registry, plus
//	                     per-route SLO gauges and # EXEMPLAR trace-ID lines
//	GET  /debug/flightrec  flight-recorder dump (filter by trace, key,
//	                     status, class, min_latency, breach; limit with n)
//	GET  /debug/cache    plan-cache occupancy, top-K hot keys, and live
//	                     singleflight flights with waiter counts
//	GET  /debug/slo      per-route objectives, percentiles, burn rates
//
// The response body of a non-explain /v1/plan is exactly the cached
// PlanResult JSON, so a hit is byte-identical to the miss that filled it
// — and, with clustering, byte-identical across replicas; how the
// request was served travels out of band in the X-Plancache header
// (miss | hit | hot | dedup | peer | bypass).
//
// Every planning route runs under the request-tracing middleware
// (obs.go): the request's trace ID — accepted from X-Trace-Id or
// generated, always echoed back — keys a span tree of the pipeline
// stages, the flight-recorder record, the structured request log line,
// and the SLO bookkeeping.
//
// Admission control: a bounded in-flight semaphore sheds planning load
// with 429 + Retry-After once MaxInflight requests are being served;
// with Quotas configured, per-tenant token buckets (keyed by the
// X-Tenant header) shed one tenant's flood the same way before it
// reaches admission, so other tenants keep planning. Request bodies are
// size-limited; each request's planning work runs under a deadline.
// Liveness and metrics bypass admission so the service stays observable
// under overload. Graceful shutdown is the caller's http.Server.Shutdown,
// which drains in-flight handlers.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"looppart"
	"looppart/internal/cluster"
	"looppart/internal/commsets"
	"looppart/internal/obs"
	"looppart/internal/telemetry"
	"looppart/internal/verify"
)

// Config parameterizes a Server.
type Config struct {
	// Service answers the planning requests (required).
	Service *looppart.Service
	// Registry receives the server's own spans, counters, and gauges and
	// backs /metrics. May be nil (endpoints still work; /metrics is empty).
	Registry *telemetry.Registry
	// MaxInflight bounds concurrently served planning requests
	// (default 4×GOMAXPROCS). Excess requests are shed with 429.
	MaxInflight int
	// PlanTimeout bounds one request's planning work (default 10s). A
	// request that exceeds it gets 503; the underlying search still
	// completes and fills the cache.
	PlanTimeout time.Duration
	// MaxBodyBytes bounds a request body (default 1 MiB).
	MaxBodyBytes int64
	// SelfCheck verifies every served plan as if ?verify=1 were set on the
	// request (cmd/looppartd -selfcheck): the plan is reconstructed from
	// its serialized form and re-validated against the iteration space
	// before it is returned. A plan that fails verification is answered
	// with 500 and the failing report instead of the plan.
	SelfCheck bool

	// Logger receives one structured JSON line per completed planning
	// request, keyed by trace ID (obs.NewLogger). Nil disables request
	// logging.
	Logger *slog.Logger
	// Recorder is the flight recorder behind /debug/flightrec. Nil gets a
	// default-sized ring, so the endpoint always works.
	Recorder *obs.Recorder
	// SLO matches request latencies against per-route objectives and
	// feeds the /metrics burn-rate gauges. May be nil (no SLO tracking).
	SLO *obs.SLOTracker

	// Cluster, when non-nil, is this replica's peer-fill client; its ring
	// ownership, fill counters, and breaker states are mirrored into
	// /metrics. (The client itself is wired into the Service as its
	// PeerFiller by the caller — the server only observes it.)
	Cluster *cluster.Client
	// Quotas, when non-nil, rate-limits the planning routes per tenant
	// (X-Tenant header; empty shares cluster.AnonTenant). Exhausted
	// tenants are shed with 429 + Retry-After before admission.
	Quotas *cluster.Quotas
}

// Server routes the planning API. Install via Handler().
type Server struct {
	cfg Config
	sem chan struct{}
	mux *http.ServeMux

	// explainMu serializes explain requests (writers) against all other
	// planning (readers): Service.Explain swaps in a private telemetry
	// registry to collect a clean decision trace, so nothing else may
	// plan while one runs.
	explainMu sync.RWMutex

	// testPlanGate, when set, is called at the start of every planning
	// request after admission; tests use it to hold requests in flight
	// deterministically.
	testPlanGate func()
}

// New returns a Server for cfg.
func New(cfg Config) *Server {
	if cfg.Service == nil {
		panic("server: Config.Service is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.PlanTimeout <= 0 {
		cfg.PlanTimeout = 10 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewRecorder(0)
	}
	s := &Server{
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInflight),
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/plan", s.traced("/v1/plan", s.handlePlan))
	s.mux.HandleFunc("/v1/plan/batch", s.traced("/v1/plan/batch", s.handleBatch))
	s.mux.HandleFunc("/v1/autotune", s.traced("/v1/autotune", s.handleAutotune))
	s.mux.HandleFunc(cluster.PeerPlanPath, s.traced(cluster.PeerPlanPath, s.handlePeerPlan))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/flightrec", s.handleFlightrec)
	s.mux.HandleFunc("/debug/cache", s.handleDebugCache)
	s.mux.HandleFunc("/debug/slo", s.handleDebugSLO)
	return s
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// admit reserves an in-flight slot, or sheds the request with 429.
func (s *Server) admit(w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		s.cfg.Registry.Gauge("server.inflight").Set(float64(len(s.sem)))
		return true
	default:
		s.cfg.Registry.Counter("server.shed").Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity, retry shortly")
		return false
	}
}

func (s *Server) release() {
	<-s.sem
	s.cfg.Registry.Gauge("server.inflight").Set(float64(len(s.sem)))
}

// allowTenant spends one token from the requesting tenant's quota
// bucket, or sheds the request with 429 + Retry-After. A nil Quotas
// admits everything. Peer fills (/v1/peer/plan) are replica-to-replica
// traffic and are not metered here — the originating replica already
// charged its own caller.
func (s *Server) allowTenant(w http.ResponseWriter, r *http.Request) bool {
	tenant := r.Header.Get("X-Tenant")
	ok, wait := s.cfg.Quotas.Allow(tenant)
	if ok {
		return true
	}
	s.cfg.Registry.Counter("server.quota_rejected").Add(1)
	if tenant == "" {
		tenant = cluster.AnonTenant
	}
	if sp := obs.TraceFrom(r.Context()).Root(); sp != nil {
		sp.SetAttr("quota_tenant", tenant)
	}
	// Ceiling with a floor of 1: Retry-After is whole seconds, and a
	// sub-second wait must never round to 0 (an immediate retry into the
	// same empty bucket), while an exact multiple must not gain a spare
	// second.
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests,
		fmt.Sprintf("tenant %q over quota, retry in %ds", tenant, secs))
	return false
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// decode reads a size-limited JSON body into v. It reports 413 for
// oversized bodies and 400 for malformed ones.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		}
		return false
	}
	return true
}

// plan runs one planning request under the explain read-lock and the
// request deadline.
func (s *Server) plan(ctx context.Context, req looppart.PlanRequest) (*looppart.PlanResponse, error) {
	if s.testPlanGate != nil {
		s.testPlanGate()
	}
	s.explainMu.RLock()
	defer s.explainMu.RUnlock()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.PlanTimeout)
	defer cancel()
	return s.cfg.Service.Plan(ctx, req)
}

// planStatus maps a planning error to an HTTP status: deadline/cancel →
// 503 (the search outlived this request's budget), anything else → 422
// (the request was well-formed JSON but not plannable).
func planStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	reg := s.cfg.Registry
	reg.Counter("server.requests").Add(1)
	if !s.allowTenant(w, r) {
		return
	}
	if !s.admit(w) {
		return
	}
	defer s.release()
	sp := reg.StartSpan("server.plan")
	defer sp.End()
	start := time.Now()

	var req looppart.PlanRequest
	if !s.decode(w, r, &req) {
		reg.Counter("server.errors").Add(1)
		return
	}

	if r.URL.Query().Get("explain") == "1" {
		s.handleExplain(w, r, req)
		return
	}

	resp, err := s.plan(r.Context(), req)
	if err != nil {
		reg.Counter("server.errors").Add(1)
		s.fail(w, r, planStatus(err), err.Error())
		return
	}
	reg.Histogram("server.plan.latency").Observe(time.Since(start))
	s.publishCacheGauges()
	sp.SetArg("key", resp.Key)
	sp.SetArg("cache", resp.Status)
	obs.TraceFrom(r.Context()).Root().SetAttr("cache", resp.Status)

	if s.cfg.SelfCheck || r.URL.Query().Get("verify") == "1" {
		s.handleVerified(w, r, req, resp)
		return
	}
	if r.URL.Query().Get("commsets") == "1" {
		s.handleCommSets(w, r, req, resp)
		return
	}

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Plancache", resp.Status)
	w.Write(resp.Raw)
}

// commResponse wraps a plan result with its communication-set summary.
// Result is the canonical plan bytes, unchanged by the analysis. For
// plans resolved in the rectangular-grid family the envelope also carries
// the Dinh–Demmel communication lower bound and the plan's optimality
// score against it (100 = comm-optimal); both are omitted when the bound
// makes no claim about the served plan's family.
type commResponse struct {
	Result            json.RawMessage   `json:"result"`
	Comm              *commsets.Summary `json:"comm"`
	CommLowerBound    *int64            `json:"comm_lower_bound,omitempty"`
	CommOptimalityPct *float64          `json:"comm_optimality_pct,omitempty"`
}

// handleCommSets answers ?commsets=1: the served plan plus its exact
// per-epoch communication certificate, computed on demand from the
// serialized result (or echoed from the attached summary when the
// service runs with CommSets on).
func (s *Server) handleCommSets(w http.ResponseWriter, r *http.Request, req looppart.PlanRequest, resp *looppart.PlanResponse) {
	reg := s.cfg.Registry
	sum, err := s.cfg.Service.CommSummary(r.Context(), req, resp.Result)
	if err != nil {
		reg.Counter("server.errors").Add(1)
		s.fail(w, r, http.StatusUnprocessableEntity, err.Error())
		return
	}
	reg.Counter("server.commsets").Add(1)
	lb, pct := s.cfg.Service.CommOptimality(req, resp.Result, sum.Words)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Plancache", resp.Status)
	json.NewEncoder(w).Encode(commResponse{Result: resp.Raw, Comm: sum, CommLowerBound: lb, CommOptimalityPct: pct})
}

// verifyResponse wraps a plan result with its self-check report. Result
// is the canonical plan bytes, unchanged by verification.
type verifyResponse struct {
	Result json.RawMessage `json:"result"`
	Verify *verify.Report  `json:"verify"`
}

// handleVerified re-validates the served plan (reconstruction, rendering
// byte-identity, coverage, occupancy, footprint model) before returning
// it. A failing report is a server error — the service just served a plan
// it cannot stand behind — so the plan is withheld and the report
// returned with 500.
func (s *Server) handleVerified(w http.ResponseWriter, r *http.Request, req looppart.PlanRequest, resp *looppart.PlanResponse) {
	reg := s.cfg.Registry
	_, vsp := obs.StartSpan(r.Context(), "verify")
	rep := s.cfg.Service.Verify(req, resp.Result)
	vsp.SetAttr("ok", rep.OK())
	vsp.SetAttr("checks", len(rep.Checks))
	vsp.End()
	reg.Counter("server.verifies").Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Plancache", resp.Status)
	if !rep.OK() {
		reg.Counter("server.verify_failures").Add(1)
		if sp := obs.TraceFrom(r.Context()).Root(); sp != nil {
			sp.SetAttr("error", "plan verification failed")
		}
		w.WriteHeader(http.StatusInternalServerError)
	}
	json.NewEncoder(w).Encode(verifyResponse{Result: resp.Raw, Verify: rep})
}

// explainResponse wraps a plan result with its decision trace.
type explainResponse struct {
	Result json.RawMessage `json:"result"`
	Trace  string          `json:"trace"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, req looppart.PlanRequest) {
	reg := s.cfg.Registry
	// Exclusive: no other planning may emit into the private trace
	// registry Service.Explain installs.
	s.explainMu.Lock()
	resp, trace, err := s.cfg.Service.Explain(req)
	s.explainMu.Unlock()
	if err != nil {
		reg.Counter("server.errors").Add(1)
		s.fail(w, r, planStatus(err), err.Error())
		return
	}
	reg.Counter("server.explains").Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Plancache", resp.Status)
	json.NewEncoder(w).Encode(explainResponse{Result: resp.Raw, Trace: trace})
}

// batchRequest and batchResponse frame /v1/plan/batch.
type batchRequest struct {
	Requests []looppart.PlanRequest `json:"requests"`
}

type batchItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Cache  string          `json:"cache,omitempty"`
	Error  string          `json:"error,omitempty"`
}

type batchResponse struct {
	Responses []batchItem `json:"responses"`
}

// maxBatchItems bounds one batch so a single request cannot monopolize
// the planner.
const maxBatchItems = 256

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	reg := s.cfg.Registry
	reg.Counter("server.requests").Add(1)
	if !s.allowTenant(w, r) {
		return
	}
	if !s.admit(w) {
		return
	}
	defer s.release()
	sp := reg.StartSpan("server.plan.batch")
	defer sp.End()
	start := time.Now()

	var batch batchRequest
	if !s.decode(w, r, &batch) {
		reg.Counter("server.errors").Add(1)
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(batch.Requests) > maxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds the %d-item limit", len(batch.Requests), maxBatchItems))
		return
	}

	// Items run concurrently; duplicates inside one batch collapse onto a
	// single search through the service's singleflight group.
	items := make([]batchItem, len(batch.Requests))
	var wg sync.WaitGroup
	wg.Add(len(batch.Requests))
	for i, req := range batch.Requests {
		go func(i int, req looppart.PlanRequest) {
			defer wg.Done()
			resp, err := s.plan(r.Context(), req)
			if err != nil {
				items[i] = batchItem{Error: err.Error()}
				return
			}
			items[i] = batchItem{Result: resp.Raw, Cache: resp.Status}
		}(i, req)
	}
	wg.Wait()
	reg.Histogram("server.plan.batch.latency").Observe(time.Since(start))
	s.publishCacheGauges()
	sp.SetArg("items", len(batch.Requests))

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(batchResponse{Responses: items})
}

// handleAutotune runs a measured plan tournament on demand. Tournaments
// replay every candidate through the simulator, so they are the most
// expensive request the server takes — the same admission semaphore that
// bounds planning bounds them, and the explain read-lock keeps their
// telemetry out of private explain registries.
func (s *Server) handleAutotune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	reg := s.cfg.Registry
	reg.Counter("server.requests").Add(1)
	if !s.allowTenant(w, r) {
		return
	}
	if !s.admit(w) {
		return
	}
	defer s.release()
	sp := reg.StartSpan("server.autotune")
	defer sp.End()
	start := time.Now()

	var req looppart.PlanRequest
	if !s.decode(w, r, &req) {
		reg.Counter("server.errors").Add(1)
		return
	}
	if s.testPlanGate != nil {
		s.testPlanGate()
	}
	s.explainMu.RLock()
	res, err := s.cfg.Service.Tournament(req)
	s.explainMu.RUnlock()
	if err != nil {
		reg.Counter("server.errors").Add(1)
		s.fail(w, r, planStatus(err), err.Error())
		return
	}
	reg.Counter("server.autotunes").Add(1)
	reg.Histogram("server.autotune.latency").Observe(time.Since(start))
	s.publishCacheGauges()
	sp.SetArg("winner", res.WinnerCandidate().TileDesc)

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// handlePeerPlan answers a peer replica's fill request: the same body
// as /v1/plan, served via Service.PlanLocal so this replica never
// peer-fills in turn — a fill is structurally one hop. Belt and braces,
// an X-Peer-Hop above cluster.MaxHops is rejected outright, so even a
// misconfigured fleet (two replicas disagreeing about ownership) cannot
// forward a request in a loop. The peer's trace ID arrives on
// X-Trace-Id and is adopted by the tracing middleware, so the owner-side
// flight record joins the originating request's trace.
func (s *Server) handlePeerPlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	reg := s.cfg.Registry
	reg.Counter("server.requests").Add(1)
	reg.Counter("server.peer_requests").Add(1)
	if h := r.Header.Get(cluster.HopHeader); h != "" {
		if hops, err := strconv.Atoi(h); err != nil || hops > cluster.MaxHops {
			reg.Counter("server.peer_loop_rejected").Add(1)
			writeError(w, http.StatusLoopDetected,
				fmt.Sprintf("peer hop count %q exceeds %d", h, cluster.MaxHops))
			return
		}
	}
	if !s.admit(w) {
		return
	}
	defer s.release()
	sp := reg.StartSpan("server.peer.plan")
	defer sp.End()
	start := time.Now()

	var req looppart.PlanRequest
	if !s.decode(w, r, &req) {
		reg.Counter("server.errors").Add(1)
		return
	}

	s.explainMu.RLock()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.PlanTimeout)
	resp, err := s.cfg.Service.PlanLocal(ctx, req)
	cancel()
	s.explainMu.RUnlock()
	if err != nil {
		reg.Counter("server.errors").Add(1)
		s.fail(w, r, planStatus(err), err.Error())
		return
	}
	reg.Histogram("server.peer.plan.latency").Observe(time.Since(start))
	s.publishCacheGauges()
	sp.SetArg("key", resp.Key)
	sp.SetArg("cache", resp.Status)
	if from := r.Header.Get(cluster.FromHeader); from != "" {
		sp.SetArg("from", from)
	}
	root := obs.TraceFrom(r.Context()).Root()
	root.SetAttr("cache", resp.Status)
	root.SetAttr("peer_from", r.Header.Get(cluster.FromHeader))

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Plancache", resp.Status)
	w.Write(resp.Raw)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.publishCacheGauges()
	s.cfg.SLO.Publish(s.cfg.Registry)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.cfg.Registry.WriteMetricsText(w); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Exemplar comment lines: the text exposition format (0.0.4) has no
	// native exemplars, so the latest breach per route rides along as a
	// comment a human (or a log pipeline) can join against
	// /debug/flightrec?trace=<id>.
	for _, st := range s.cfg.SLO.Status() {
		ex := st.Exemplar
		if ex == nil {
			continue
		}
		fmt.Fprintf(w, "# EXEMPLAR %s trace_id=%q latency_seconds=%g\n",
			telemetry.PromName("server.slo."+st.Objective.Route+".breach"),
			ex.TraceID, ex.Latency.Seconds())
	}
}

// publishCacheGauges mirrors the service and cache counters into the
// registry so /metrics exposes them.
func (s *Server) publishCacheGauges() {
	reg := s.cfg.Registry
	if reg == nil {
		return
	}
	st := s.cfg.Service.Stats()
	reg.Gauge("plancache.entries").Set(float64(st.Cache.Entries))
	reg.Gauge("plancache.bytes").Set(float64(st.Cache.Bytes))
	reg.Gauge("plancache.hit_ratio").Set(st.Cache.HitRatio())
	reg.Gauge("service.searches").Set(float64(st.Searches))
	reg.Gauge("service.cache_hits").Set(float64(st.CacheHits))
	if st.Store != nil {
		reg.Gauge("autotune.store.entries").Set(float64(st.Store.Entries))
		reg.Gauge("autotune.store.get_hits").Set(float64(st.Store.GetHits))
		reg.Gauge("autotune.store.quarantined_entries").Set(float64(st.Store.Quarantined))
		reg.Gauge("service.store_hits").Set(float64(st.StoreHits))
		reg.Gauge("service.warm_loaded").Set(float64(st.WarmLoaded))
	}
	if st.Hot != nil {
		reg.Gauge("plancache.hot.entries").Set(float64(st.Hot.Entries))
		reg.Gauge("plancache.hot.hits").Set(float64(st.Hot.Hits))
		reg.Gauge("plancache.hot.rebuilds").Set(float64(st.Hot.Rebuilds))
		reg.Gauge("service.hot_hits").Set(float64(st.HotHits))
	}
	s.publishClusterGauges()
}

// publishClusterGauges mirrors the peer-fill client and quota counters
// into the registry: ring ownership per member, fill outcomes, breaker
// positions (0 closed, 1 half-open, 2 open), and quota rejections.
func (s *Server) publishClusterGauges() {
	reg := s.cfg.Registry
	if reg == nil {
		return
	}
	if c := s.cfg.Cluster; c != nil {
		st := c.Stats()
		reg.Gauge("cluster.ring.members").Set(float64(st.Members))
		reg.Gauge("cluster.ring.self_fraction").Set(st.SelfFraction)
		for _, m := range c.Ring().Members() {
			reg.Gauge("cluster.ring.owned_fraction." + m).Set(c.Ring().OwnedFraction(m))
		}
		reg.Gauge("cluster.peer_fill.fills").Set(float64(st.Fills))
		reg.Gauge("cluster.peer_fill.fill_failures").Set(float64(st.FillFailures))
		reg.Gauge("cluster.peer_fill.self_owned").Set(float64(st.SelfOwned))
		reg.Gauge("cluster.peer_fill.breaker_skips").Set(float64(st.BreakerSkips))
		reg.Gauge("cluster.peer_fill.hedged").Set(float64(st.Hedges))
		for _, b := range st.Breakers {
			reg.Gauge("cluster.breaker." + b.Peer).Set(float64(b.Code))
		}
		svc := s.cfg.Service.Stats()
		reg.Gauge("service.peer_hits").Set(float64(svc.PeerHits))
		reg.Gauge("service.peer_fallbacks").Set(float64(svc.PeerFallbacks))
	}
	if q := s.cfg.Quotas; q != nil {
		st := q.Stats()
		reg.Gauge("cluster.quota.tenants").Set(float64(st.Tenants))
		reg.Gauge("cluster.quota.allowed").Set(float64(st.Allowed))
		reg.Gauge("cluster.quota.rejected").Set(float64(st.Rejected))
	}
}
