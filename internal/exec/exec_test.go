package exec

import (
	"testing"

	"looppart/internal/loopir"
	"looppart/internal/paperex"
	"looppart/internal/tile"
)

func setupStore(t testing.TB, n *loopir.Nest) Store {
	t.Helper()
	st, err := StoreFor(n)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic nontrivial contents.
	for _, arr := range st {
		arr.Fill(func(idx []int64) float64 {
			v := 1.0
			for k, x := range idx {
				v += float64(x) * float64(k+1) * 0.5
			}
			return v
		})
	}
	return st
}

func assignFor(t testing.TB, n *loopir.Nest, ext []int64, procs int) func([]int64) int {
	t.Helper()
	space := tile.BoundsOf(n)
	tl, err := tile.RectTilingFor(space, ext)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tile.Assign(tl, space, procs)
	if err != nil {
		t.Fatal(err)
	}
	return a.ProcOf
}

func TestArrayBasics(t *testing.T) {
	a, err := NewArray("A", []int64{0, -2}, []int64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	a.Set([]int64{1, -1}, 42)
	if got := a.At([]int64{1, -1}); got != 42 {
		t.Fatalf("At = %v", got)
	}
	// Halo semantics.
	if got := a.At([]int64{99, 0}); got != 0 {
		t.Fatalf("halo read = %v", got)
	}
	a.Set([]int64{99, 0}, 7) // dropped
	if got := a.At([]int64{99, 0}); got != 0 {
		t.Fatalf("halo write leaked: %v", got)
	}
}

func TestArrayErrors(t *testing.T) {
	if _, err := NewArray("A", []int64{0}, []int64{0, 1}); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := NewArray("A", []int64{5}, []int64{2}); err == nil {
		t.Error("empty dimension accepted")
	}
}

func TestStoreFor(t *testing.T) {
	n := loopir.MustParse(paperex.Example2, nil)
	st, err := StoreFor(n)
	if err != nil {
		t.Fatal(err)
	}
	a := st["A"]
	if a.Lo[0] != 101 || a.Hi[0] != 200 || a.Lo[1] != 1 || a.Hi[1] != 100 {
		t.Fatalf("A bounds = %v..%v", a.Lo, a.Hi)
	}
	b := st["B"]
	// B[i+j, i-j-1] and B[i+j+4, i-j+3]: first dim spans 102..304,
	// second spans 101-100-1=0 .. 200-1+3=202.
	if b.Lo[0] != 102 || b.Hi[0] != 304 {
		t.Fatalf("B dim0 = %d..%d", b.Lo[0], b.Hi[0])
	}
	if b.Lo[1] != 0 || b.Hi[1] != 202 {
		t.Fatalf("B dim1 = %d..%d", b.Lo[1], b.Hi[1])
	}
}

func TestStoreForRankConflict(t *testing.T) {
	n := loopir.MustParse(`
doall (i, 1, 4)
  A[i] = A[i,i]
enddoall`, nil)
	if _, err := StoreFor(n); err == nil {
		t.Fatal("rank conflict accepted")
	}
}

func TestParallelMatchesSequentialExample2(t *testing.T) {
	n := loopir.MustParse(paperex.Example2, nil)
	stSeq := setupStore(t, n)
	stPar := Store{}
	for k, v := range stSeq {
		stPar[k] = v.Clone()
	}
	RunSequential(n, stSeq)
	if err := RunParallel(n, stPar, 100, assignFor(t, n, []int64{10, 10}, 100)); err != nil {
		t.Fatal(err)
	}
	if !stSeq["A"].EqualWithin(stPar["A"], 0) {
		t.Fatal("parallel A differs from sequential")
	}
}

func TestParallelMatchesSequentialDoseqStencil(t *testing.T) {
	// A valid doall body (each iteration writes only its own element and
	// reads only B, which no one writes) wrapped in a doseq: epochs
	// accumulate into A, so a missing barrier or mis-tiled epoch would
	// change the result.
	n := loopir.MustParse(`
doseq (t, 1, 4)
  doall (i, 1, 32)
    A[i] = A[i] + B[i-1] + B[i+1]
  enddoall
enddoseq`, nil)
	stSeq := setupStore(t, n)
	stPar := Store{}
	for k, v := range stSeq {
		stPar[k] = v.Clone()
	}
	RunSequential(n, stSeq)
	if err := RunParallel(n, stPar, 4, assignFor(t, n, []int64{8}, 4)); err != nil {
		t.Fatal(err)
	}
	if !stSeq["A"].EqualWithin(stPar["A"], 0) {
		t.Fatal("parallel doseq result differs from sequential")
	}
	// Four epochs accumulated: spot-check one interior element.
	want := setupStore(t, n)["A"].At([]int64{5}) +
		4*(stSeq["B"].At([]int64{4})+stSeq["B"].At([]int64{6}))
	if got := stSeq["A"].At([]int64{5}); got != want {
		t.Fatalf("A[5] = %v, want %v", got, want)
	}
}

func TestMatmulSyncCorrectness(t *testing.T) {
	// Figure 11: l$C accumulate matmul. Accumulation order varies but
	// the result is order-independent (sums), so parallel must equal
	// sequential.
	n := loopir.MustParse(paperex.MatmulSync, map[string]int64{"N": 8})
	stSeq := setupStore(t, n)
	// Zero C: accumulates start from zero.
	stSeq["C"].Fill(func([]int64) float64 { return 0 })
	stPar := Store{}
	for k, v := range stSeq {
		stPar[k] = v.Clone()
	}
	RunSequential(n, stSeq)
	if err := RunParallel(n, stPar, 8, assignFor(t, n, []int64{4, 4, 4}, 8)); err != nil {
		t.Fatal(err)
	}
	if !stSeq["C"].EqualWithin(stPar["C"], 1e-9) {
		t.Fatal("parallel matmul differs from sequential")
	}
	// Sanity: C actually holds the matmul of A and B.
	var want float64
	for k := int64(1); k <= 8; k++ {
		a := stSeq["A"].At([]int64{2, k})
		b := stSeq["B"].At([]int64{k, 3})
		want += a * b
	}
	if got := stSeq["C"].At([]int64{2, 3}); got != want {
		t.Fatalf("C[2,3] = %v, want %v", got, want)
	}
}

func TestSplitAccumulate(t *testing.T) {
	n := loopir.MustParse(paperex.MatmulSync, map[string]int64{"N": 2})
	inc, ok := splitAccumulate(n.Body[0])
	if !ok {
		t.Fatal("matmul accumulate not recognized")
	}
	if _, isBin := inc.(loopir.BinExpr); !isBin {
		t.Fatalf("increment = %#v", inc)
	}
	// Non-accumulate form.
	n2 := loopir.MustParse(`
doall (i, 1, 2)
  l$A[i] = B[i] * 2
enddoall`, nil)
	if _, ok := splitAccumulate(n2.Body[0]); ok {
		t.Fatal("non-self accumulate misrecognized")
	}
}

func TestAtomicUpdateFallback(t *testing.T) {
	// l$A[i] = B[i] * 2 takes the locked read-modify-write path.
	n := loopir.MustParse(`
doall (i, 1, 16)
  l$A[i] = B[i] * 2
enddoall`, nil)
	st := setupStore(t, n)
	if err := RunParallel(n, st, 4, assignFor(t, n, []int64{4}, 4)); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 16; i++ {
		want := st["B"].At([]int64{i}) * 2
		if got := st["A"].At([]int64{i}); got != want {
			t.Fatalf("A[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestRunParallelBadAssign(t *testing.T) {
	n := loopir.MustParse(`doall (i, 1, 4) A[i] = 0 enddoall`, nil)
	st := setupStore(t, n)
	if err := RunParallel(n, st, 2, func([]int64) int { return 7 }); err == nil {
		t.Fatal("bad assignment accepted")
	}
	if err := RunParallel(n, st, 0, func([]int64) int { return 0 }); err == nil {
		t.Fatal("0 processors accepted")
	}
}

func TestVarExprRHS(t *testing.T) {
	n := loopir.MustParse(`
doall (i, 1, 4)
  doall (j, 1, 4)
    A[i,j] = i * 10 + j
  enddoall
enddoall`, nil)
	st := setupStore(t, n)
	RunSequential(n, st)
	if got := st["A"].At([]int64{3, 2}); got != 32 {
		t.Fatalf("A[3,2] = %v", got)
	}
}

func TestFillAndClone(t *testing.T) {
	a, _ := NewArray("A", []int64{0}, []int64{3})
	a.Fill(func(idx []int64) float64 { return float64(idx[0] * idx[0]) })
	b := a.Clone()
	if !a.EqualWithin(b, 0) {
		t.Fatal("clone differs")
	}
	b.Set([]int64{2}, -1)
	if a.EqualWithin(b, 0) {
		t.Fatal("clone aliases original")
	}
	if a.At([]int64{3}) != 9 {
		t.Fatalf("fill wrong: %v", a.At([]int64{3}))
	}
}

func BenchmarkParallelExample2(b *testing.B) {
	n := loopir.MustParse(paperex.Example2, nil)
	st, err := StoreFor(n)
	if err != nil {
		b.Fatal(err)
	}
	assign := assignFor(b, n, []int64{100, 1}, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := RunParallel(n, st, 100, assign); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialExample2(b *testing.B) {
	n := loopir.MustParse(paperex.Example2, nil)
	st, err := StoreFor(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSequential(n, st)
	}
}

// TestArrayHaloClampingBothEdges pins the halo contract on every edge of
// every dimension: subscripts below Lo and above Hi read 0, and plain,
// atomic-add, and atomic-update writes there are all dropped without
// disturbing interior elements.
func TestArrayHaloClampingBothEdges(t *testing.T) {
	a, err := NewArray("A", []int64{1, -3}, []int64{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	a.Fill(func(idx []int64) float64 { return 1 })

	oob := [][]int64{
		{0, 0},   // below Lo in dim 0
		{5, 0},   // above Hi in dim 0
		{2, -4},  // below Lo in dim 1
		{2, 4},   // above Hi in dim 1
		{0, -4},  // past both edges at once
		{5, 4},   // past both edges at once
		{-9, 99}, // far outside
	}
	for _, idx := range oob {
		if got := a.At(idx); got != 0 {
			t.Errorf("At(%v) = %v, want 0 (halo read)", idx, got)
		}
		a.Set(idx, 7)
		a.AtomicAdd(idx, 7)
		a.AtomicUpdate(idx, func(old float64) float64 { return old + 7 })
		if got := a.At(idx); got != 0 {
			t.Errorf("At(%v) = %v after halo writes, want 0 (dropped)", idx, got)
		}
	}
	// No halo write leaked into the interior: every in-bounds element is
	// still exactly what Fill put there.
	for i := a.Lo[0]; i <= a.Hi[0]; i++ {
		for j := a.Lo[1]; j <= a.Hi[1]; j++ {
			if got := a.At([]int64{i, j}); got != 1 {
				t.Fatalf("interior [%d,%d] = %v after halo writes, want 1", i, j, got)
			}
		}
	}
	// Wrong-rank subscripts are clamped the same way, not a panic.
	if got := a.At([]int64{2}); got != 0 {
		t.Errorf("rank-mismatched read = %v, want 0", got)
	}
	a.Set([]int64{2}, 7)
	if got := a.At([]int64{2, 0}); got != 1 {
		t.Errorf("rank-mismatched write leaked: %v", got)
	}
}
