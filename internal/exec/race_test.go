package exec

// Concurrency tests intended to run under the race detector (CI runs
// `go test -race ./...`; see scripts/verify.sh): a doall epoch whose every
// iteration issues atomic accumulates into a small shared array, so many
// goroutines hammer the same striped locks at once. Sizes scale down under
// `go test -short` to keep the -race run quick.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"looppart/internal/loopir"
	"looppart/internal/paperex"
	"looppart/internal/telemetry"
)

// raceSize picks the problem size: modest by default (the race detector
// multiplies runtime ~10×), smaller still with -short.
func raceSize(t *testing.T) (n int64, procs int) {
	t.Helper()
	if testing.Short() {
		return 8, 4
	}
	return 16, 8
}

func TestRunParallelAtomicAccumulatesRace(t *testing.T) {
	n, procs := raceSize(t)
	nest, err := loopir.Parse(paperex.MatmulSync, map[string]int64{"N": n})
	if err != nil {
		t.Fatal(err)
	}
	st := setupStore(t, nest)
	want := setupStore(t, nest)
	RunSequential(nest, want)

	assign := assignFor(t, nest, []int64{n / 2, n / 2, n}, procs)
	if err := RunParallel(nest, st, procs, assign); err != nil {
		t.Fatal(err)
	}
	if !st["C"].EqualWithin(want["C"], 1e-6) {
		t.Errorf("parallel atomic accumulates diverge from sequential execution")
	}
}

func TestAtomicAddConcurrentSameElement(t *testing.T) {
	// Every goroutine accumulates into the same element: the worst case
	// for the striped locks and the easiest race to detect.
	a, err := NewArray("C", []int64{0, 0}, []int64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	workers := 2 * runtime.GOMAXPROCS(0)
	adds := 2000
	if testing.Short() {
		adds = 200
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				a.AtomicAdd([]int64{1, 2}, 1)
				a.AtomicUpdate([]int64{2, 1}, func(old float64) float64 { return old + 2 })
			}
		}()
	}
	wg.Wait()
	if got, want := a.At([]int64{1, 2}), float64(workers*adds); got != want {
		t.Errorf("AtomicAdd total = %v, want %v", got, want)
	}
	if got, want := a.At([]int64{2, 1}), float64(2*workers*adds); got != want {
		t.Errorf("AtomicUpdate total = %v, want %v", got, want)
	}
}

func TestStripeCount(t *testing.T) {
	for _, size := range []int64{1, 2, 7, 8, 64, 1000, 1 << 20} {
		n := stripeCount(size)
		if n < 1 || n > 1024 {
			t.Errorf("stripeCount(%d) = %d, out of [1,1024]", size, n)
		}
		if int64(n) > size {
			t.Errorf("stripeCount(%d) = %d stripes for fewer elements", size, n)
		}
		if n&(n-1) != 0 {
			t.Errorf("stripeCount(%d) = %d, not a power of two", size, n)
		}
	}
	// Large arrays get at least the GOMAXPROCS-scaled pool (the old
	// hard-coded 64 under-striped big machines).
	want := 4 * runtime.GOMAXPROCS(0)
	if want > 1024 {
		want = 1024
	}
	if n := stripeCount(1 << 20); n < want && n < 1024 {
		t.Errorf("stripeCount(1<<20) = %d, want ≥ min(4*GOMAXPROCS, 1024) = %d", n, want)
	}
}

func TestAtomicContentionCounters(t *testing.T) {
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	a, err := NewArray("C", []int64{0}, []int64{0}) // one element → one stripe
	if err != nil {
		t.Fatal(err)
	}
	const workers, adds = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				a.AtomicUpdate([]int64{0}, func(old float64) float64 {
					time.Sleep(time.Microsecond) // hold the stripe to force contention
					return old + 1
				})
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Counters["exec.atomic.acquisitions"]; got != workers*adds {
		t.Errorf("acquisitions = %d, want %d", got, workers*adds)
	}
	if snap.Counters["exec.atomic.contended"] == 0 {
		t.Errorf("no contended acquisitions counted despite serialized updates")
	}
	if got := snap.Gauges["exec.array.C.stripes"]; got != 1 {
		t.Errorf("stripes gauge = %v, want 1", got)
	}

	// With telemetry off, arrays carry no counters and pay no TryLock.
	telemetry.SetActive(nil)
	b, err := NewArray("D", []int64{0}, []int64{7})
	if err != nil {
		t.Fatal(err)
	}
	if b.acquisitions != nil || b.contended != nil {
		t.Errorf("telemetry-off array still carries counters")
	}
}

func TestRunParallelTelemetryMetrics(t *testing.T) {
	reg := telemetry.New()
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	// A doseq-wrapped doall whose body writes only its own A element and
	// reads only B: race-free, so the telemetry counters are the only
	// shared state the race detector can complain about.
	const src = `
doseq (t, 1, T)
  doall (i, 1, N)
    doall (j, 1, N)
      A[i,j] = B[i,j] + B[i+1,j+3]
    enddoall
  enddoall
enddoseq
`
	nest, err := loopir.Parse(src, map[string]int64{"N": 8, "T": 2})
	if err != nil {
		t.Fatal(err)
	}
	st := setupStore(t, nest)
	const procs = 4
	assign := assignFor(t, nest, []int64{2, 8}, procs)
	if err := RunParallel(nest, st, procs, assign); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["exec.epochs"]; got != 2 {
		t.Errorf("epochs = %d, want 2 (T=2 doseq)", got)
	}
	// 8×8 doall space, re-dispatched each of the 2 epochs: the iteration
	// split itself is counted once (it is reused across epochs).
	if got := snap.Counters["exec.iterations"]; got != 64 {
		t.Errorf("iterations = %d, want 64", got)
	}
	for p := 0; p < procs; p++ {
		name := fmt.Sprintf("exec.proc.%d.iterations", p)
		if snap.Counters[name] != 16 {
			t.Errorf("%s = %d, want 16", name, snap.Counters[name])
		}
	}
	if got := snap.Gauges["exec.load_imbalance"]; got != 1 {
		t.Errorf("load imbalance = %v, want 1.0 for the even split", got)
	}
	if h := snap.Histograms["exec.barrier_wait_ns"]; h.Count != 2*procs {
		t.Errorf("barrier wait observations = %d, want %d", h.Count, 2*procs)
	}
	if h := snap.Histograms["exec.tile_wall_ns"]; h.Count != 2*procs {
		t.Errorf("tile wall observations = %d, want %d", h.Count, 2*procs)
	}
	spans := reg.Spans()
	var tiles, epochs int
	for _, sp := range spans {
		switch sp.Name {
		case "exec.tile":
			tiles++
		case "exec.epoch":
			epochs++
		}
	}
	if tiles != 2*procs || epochs != 2 {
		t.Errorf("spans: tiles=%d epochs=%d, want %d and 2", tiles, epochs, 2*procs)
	}
}
