// Package exec runs partitioned loop nests for real: each processor of the
// plan becomes a goroutine executing its tile's iterations over dense
// float64 arrays, with a barrier between sequential (doseq) epochs and
// atomic accumulates for synchronizing references (Appendix A).
//
// The executor is the "code generation" end of the pipeline: it
// demonstrates that the partitions the analysis produces compute the same
// values as sequential execution, and it provides wall-clock measurements
// for the benchmark harness.
package exec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"looppart/internal/layout"
	"looppart/internal/loopir"
	"looppart/internal/telemetry"
)

// Array is a dense multidimensional float64 array with explicit bounds per
// dimension. Subscripts outside the bounds are clamped into a halo: reads
// return 0 and writes are dropped. (The paper's loop bounds keep interior
// references in range; stencils naturally read one or two elements past
// the edge, which real codes handle with halo cells.)
type Array struct {
	Name string
	Lo   []int64
	Hi   []int64
	data []float64
	// strides for row-major layout.
	strides []int64
	mu      []sync.Mutex // striped locks for atomic accumulates
	// acquisitions/contended count striped-lock traffic when telemetry is
	// active at allocation time; both nil otherwise (zero overhead).
	acquisitions *telemetry.Counter
	contended    *telemetry.Counter
}

// stripeCount sizes the striped-lock pool for an array of size elements:
// enough stripes that GOMAXPROCS writers rarely collide on a lock they
// would not collide on as elements (4× oversubscription, rounded up to a
// power of two), but never more stripes than elements and never an
// unbounded pool for huge arrays.
func stripeCount(size int64) int {
	target := 4 * runtime.GOMAXPROCS(0)
	n := 8
	for n < target {
		n <<= 1
	}
	if n > 1024 {
		n = 1024
	}
	for int64(n) > size && n > 1 {
		n >>= 1
	}
	return n
}

// NewArray allocates an array covering [lo[k], hi[k]] per dimension.
func NewArray(name string, lo, hi []int64) (*Array, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("exec: bounds rank mismatch")
	}
	size := int64(1)
	strides := make([]int64, len(lo))
	for k := len(lo) - 1; k >= 0; k-- {
		if hi[k] < lo[k] {
			return nil, fmt.Errorf("exec: empty dimension %d", k)
		}
		strides[k] = size
		size *= hi[k] - lo[k] + 1
	}
	const maxElems = 1 << 28
	if size > maxElems {
		return nil, fmt.Errorf("exec: array %s too large (%d elements)", name, size)
	}
	a := &Array{Name: name, Lo: lo, Hi: hi, data: make([]float64, size), strides: strides,
		mu: make([]sync.Mutex, stripeCount(size))}
	if reg := telemetry.Active(); reg != nil {
		a.acquisitions = reg.Counter("exec.atomic.acquisitions")
		a.contended = reg.Counter("exec.atomic.contended")
		reg.Gauge("exec.array." + name + ".stripes").Set(float64(len(a.mu)))
	}
	return a, nil
}

// lockStripe acquires the stripe lock for off, counting contended
// acquisitions when telemetry was active at allocation.
func (a *Array) lockStripe(off int64) *sync.Mutex {
	m := &a.mu[off%int64(len(a.mu))]
	if a.acquisitions == nil {
		m.Lock()
		return m
	}
	a.acquisitions.Add(1)
	if !m.TryLock() {
		a.contended.Add(1)
		m.Lock()
	}
	return m
}

func (a *Array) offset(idx []int64) (int64, bool) {
	if len(idx) != len(a.Lo) {
		return 0, false
	}
	var off int64
	for k := range idx {
		if idx[k] < a.Lo[k] || idx[k] > a.Hi[k] {
			return 0, false
		}
		off += (idx[k] - a.Lo[k]) * a.strides[k]
	}
	return off, true
}

// At reads an element; out-of-bounds reads return 0 (halo).
func (a *Array) At(idx []int64) float64 {
	if off, ok := a.offset(idx); ok {
		return a.data[off]
	}
	return 0
}

// Set writes an element; out-of-bounds writes are dropped (halo).
func (a *Array) Set(idx []int64, v float64) {
	if off, ok := a.offset(idx); ok {
		a.data[off] = v
	}
}

// AtomicAdd accumulates into an element under a striped lock.
func (a *Array) AtomicAdd(idx []int64, v float64) {
	off, ok := a.offset(idx)
	if !ok {
		return
	}
	m := a.lockStripe(off)
	a.data[off] += v
	m.Unlock()
}

// AtomicUpdate applies fn to an element under its stripe lock. fn may read
// the current value through the store; the lock covers the full
// read-modify-write.
func (a *Array) AtomicUpdate(idx []int64, fn func(old float64) float64) {
	off, ok := a.offset(idx)
	if !ok {
		return
	}
	m := a.lockStripe(off)
	a.data[off] = fn(a.data[off])
	m.Unlock()
}

// Fill initializes every element with fn(index).
func (a *Array) Fill(fn func(idx []int64) float64) {
	idx := make([]int64, len(a.Lo))
	copy(idx, a.Lo)
	for {
		off, _ := a.offset(idx)
		a.data[off] = fn(idx)
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] <= a.Hi[k] {
				break
			}
			idx[k] = a.Lo[k]
			k--
		}
		if k < 0 {
			return
		}
	}
}

// Clone deep-copies the array.
func (a *Array) Clone() *Array {
	c, _ := NewArray(a.Name, a.Lo, a.Hi)
	copy(c.data, a.data)
	return c
}

// EqualWithin reports whether two arrays agree elementwise within eps.
func (a *Array) EqualWithin(b *Array, eps float64) bool {
	if len(a.data) != len(b.data) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > eps {
			return false
		}
	}
	return true
}

// Store is the set of arrays a program runs against.
type Store map[string]*Array

// StoreFor allocates arrays sized to cover every reference the nest makes,
// using the same subscript interval analysis as the memory layouts
// (layout.MapNest), so the executor and the simulators agree on bounds.
func StoreFor(n *loopir.Nest) (Store, error) {
	mm, err := layout.MapNest(n, 1)
	if err != nil {
		return nil, err
	}
	st := Store{}
	for name, l := range mm.Arrays {
		arr, err := NewArray(name, l.Lo, l.Hi)
		if err != nil {
			return nil, err
		}
		st[name] = arr
	}
	return st, nil
}

// evalExpr evaluates an RHS expression for one iteration.
func evalExpr(e loopir.Expr, st Store, env map[string]int64) float64 {
	switch t := e.(type) {
	case loopir.ConstExpr:
		return float64(t.Value)
	case loopir.VarExpr:
		return float64(env[t.Name])
	case loopir.RefExpr:
		idx := make([]int64, len(t.Ref.Subs))
		for k, s := range t.Ref.Subs {
			idx[k] = s.Eval(env)
		}
		arr, ok := st[t.Ref.Array]
		if !ok {
			panic(fmt.Sprintf("exec: unknown array %q", t.Ref.Array))
		}
		return arr.At(idx)
	case loopir.BinExpr:
		l := evalExpr(t.Left, st, env)
		r := evalExpr(t.Right, st, env)
		switch t.Op {
		case '+':
			return l + r
		case '-':
			return l - r
		case '*':
			return l * r
		default:
			panic(fmt.Sprintf("exec: unknown operator %q", t.Op))
		}
	default:
		panic("exec: unknown expression node")
	}
}

// RunIteration executes the nest body for one iteration environment
// against st. It is the single-iteration building block the
// message-passing executor (internal/msgexec) uses to run each
// processor's iterations against a private store.
func RunIteration(n *loopir.Nest, st Store, env map[string]int64) {
	runIteration(n, st, env)
}

// runIteration executes the body statements for one iteration.
func runIteration(n *loopir.Nest, st Store, env map[string]int64) {
	for _, s := range n.Body {
		idx := make([]int64, len(s.LHS.Subs))
		for k, sub := range s.LHS.Subs {
			idx[k] = sub.Eval(env)
		}
		arr, ok := st[s.LHS.Array]
		if !ok {
			panic(fmt.Sprintf("exec: unknown array %q", s.LHS.Array))
		}
		switch {
		case s.Atomic:
			// l$C[..] = C[..] + expr: accumulates may land in any order
			// but each must be atomic (Appendix A). When the statement
			// is a self-accumulate, add the increment under the element
			// lock; otherwise run the whole read-modify-write locked.
			if inc, ok := splitAccumulate(s); ok {
				arr.AtomicAdd(idx, evalExpr(inc, st, env))
			} else {
				arr.AtomicUpdate(idx, func(float64) float64 {
					return evalExpr(s.RHS, st, env)
				})
			}
		default:
			arr.Set(idx, evalExpr(s.RHS, st, env))
		}
	}
}

// splitAccumulate recognizes `l$X[e] = X[e] + rest` (either operand order)
// and returns rest.
func splitAccumulate(s loopir.Stmt) (loopir.Expr, bool) {
	bin, ok := s.RHS.(loopir.BinExpr)
	if !ok || bin.Op != '+' {
		return nil, false
	}
	if re, ok := bin.Left.(loopir.RefExpr); ok && sameRef(re.Ref, s.LHS) {
		return bin.Right, true
	}
	if re, ok := bin.Right.(loopir.RefExpr); ok && sameRef(re.Ref, s.LHS) {
		return bin.Left, true
	}
	return nil, false
}

func sameRef(a, b loopir.Ref) bool {
	if a.Array != b.Array || len(a.Subs) != len(b.Subs) {
		return false
	}
	for k := range a.Subs {
		if a.Subs[k].String() != b.Subs[k].String() {
			return false
		}
	}
	return true
}

// RunSequential executes the nest in source order (the reference
// semantics).
func RunSequential(n *loopir.Nest, st Store) {
	seqLoops := n.SeqLoops()
	var seq func(k int, extra map[string]int64)
	seq = func(k int, extra map[string]int64) {
		if k == len(seqLoops) {
			n.ForEachIteration(extra, func(env map[string]int64) bool {
				runIteration(n, st, env)
				return true
			})
			return
		}
		l := seqLoops[k]
		for v := l.Lo; v <= l.Hi; v++ {
			next := cloneEnv(extra)
			next[l.Var] = v
			seq(k+1, next)
		}
	}
	seq(0, map[string]int64{})
}

// RunParallel executes the nest with one goroutine per processor; assign
// maps each doall iteration point to a processor. A barrier separates
// doseq epochs. procs is the processor count.
func RunParallel(n *loopir.Nest, st Store, procs int, assign func(p []int64) int) error {
	if procs <= 0 {
		return fmt.Errorf("exec: need at least one processor")
	}
	vars := n.DoallVars()

	// Pre-split iterations per processor (once; reused across epochs).
	work := make([][]map[string]int64, procs)
	var bad error
	n.ForEachIteration(nil, func(env map[string]int64) bool {
		p := make([]int64, len(vars))
		for k, v := range vars {
			p[k] = env[v]
		}
		proc := assign(p)
		if proc < 0 || proc >= procs {
			bad = fmt.Errorf("exec: iteration %v assigned to processor %d of %d", p, proc, procs)
			return false
		}
		work[proc] = append(work[proc], env)
		return true
	})
	if bad != nil {
		return bad
	}

	reg := telemetry.Active()
	if reg != nil {
		// The iteration→processor split is fixed across epochs, so the
		// load-imbalance ratio (max/mean iterations, 1.0 = perfect) is
		// known before running.
		var total, maxIters int64
		for proc := 0; proc < procs; proc++ {
			c := int64(len(work[proc]))
			total += c
			if c > maxIters {
				maxIters = c
			}
			reg.Counter(fmt.Sprintf("exec.proc.%d.iterations", proc)).Add(c)
		}
		reg.Counter("exec.iterations").Add(total)
		if total > 0 {
			reg.Gauge("exec.load_imbalance").Set(float64(maxIters) * float64(procs) / float64(total))
		}
	}

	epoch := 0
	runEpoch := func(extra map[string]int64) {
		var wg sync.WaitGroup
		epochSpan := reg.StartSpan("exec.epoch")
		epochSpan.SetArg("epoch", epoch)
		epochStart := time.Now()
		var tileDur []time.Duration
		if reg != nil {
			tileDur = make([]time.Duration, procs)
		}
		for proc := 0; proc < procs; proc++ {
			wg.Add(1)
			go func(proc int, items []map[string]int64) {
				defer wg.Done()
				sp := reg.StartSpanProc("exec.tile", proc)
				sp.SetArg("epoch", epoch)
				sp.SetArg("iters", len(items))
				start := time.Now()
				for _, env := range items {
					full := env
					if len(extra) > 0 {
						full = cloneEnv(env)
						for k, v := range extra {
							full[k] = v
						}
					}
					runIteration(n, st, full)
				}
				if tileDur != nil {
					tileDur[proc] = time.Since(start)
				}
				sp.End()
			}(proc, work[proc])
		}
		wg.Wait() // barrier after the doall nest
		epochSpan.End()
		if reg != nil {
			// Every processor waits at the barrier from its own finish
			// until the slowest tile completes.
			epochDur := time.Since(epochStart)
			for proc := 0; proc < procs; proc++ {
				reg.Histogram("exec.tile_wall_ns").Observe(tileDur[proc])
				wait := epochDur - tileDur[proc]
				if wait < 0 {
					wait = 0
				}
				reg.Histogram("exec.barrier_wait_ns").Observe(wait)
			}
			reg.Counter("exec.epochs").Add(1)
		}
		epoch++
	}

	seqLoops := n.SeqLoops()
	var seq func(k int, extra map[string]int64)
	seq = func(k int, extra map[string]int64) {
		if k == len(seqLoops) {
			runEpoch(extra)
			return
		}
		l := seqLoops[k]
		for v := l.Lo; v <= l.Hi; v++ {
			next := cloneEnv(extra)
			next[l.Var] = v
			seq(k+1, next)
		}
	}
	seq(0, map[string]int64{})
	return nil
}

func cloneEnv(env map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	return out
}
