package obs

import (
	"io"
	"log/slog"
	"time"
)

// NewLogger returns a structured JSON logger for request logging: one
// line per record, every line keyed by trace_id so the log joins against
// the flight recorder and the /metrics exemplars.
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo}))
}

// LogRecord writes rec as one structured line. Completion level follows
// the outcome: 5xx → ERROR, 4xx or SLO breach → WARN, else INFO.
func LogRecord(logger *slog.Logger, rec *Record) {
	if logger == nil || rec == nil {
		return
	}
	attrs := []any{
		slog.String("trace_id", rec.TraceID),
		slog.String("route", rec.Route),
		slog.Int("status", rec.Status),
		slog.Duration("latency", time.Duration(rec.LatencyNs)),
	}
	if rec.Cache != "" {
		attrs = append(attrs, slog.String("cache", rec.Cache))
	}
	if rec.Key != "" {
		attrs = append(attrs, slog.String("key", rec.Key))
	}
	if rec.SLOBreach {
		attrs = append(attrs, slog.Bool("slo_breach", true))
	}
	if rec.Error != "" {
		attrs = append(attrs, slog.String("error", rec.Error))
	}
	switch {
	case rec.Status >= 500:
		logger.Error("request", attrs...)
	case rec.Status >= 400 || rec.SLOBreach:
		logger.Warn("request", attrs...)
	default:
		logger.Info("request", attrs...)
	}
}
