// Package obs is the request-scoped observability layer of the planning
// service: where internal/telemetry aggregates process-global counters
// and histograms, obs answers the question "what happened to *this*
// request" — the question a process-global registry structurally cannot.
//
// Each served request carries a Trace (identified by a trace ID accepted
// from the client or generated) through its context. Pipeline stages open
// Spans on the trace — cache lookup, singleflight, partition search,
// store persist, verification — and attach the numbers each stage decided
// from (canonical key, hit/miss/coalesced, candidates evaluated and
// pruned, tournament rank). The finished span tree is snapshotted into a
// flight-recorder Record (recorder.go), matched against the route's
// latency SLO (slo.go), and logged as one structured JSON line keyed by
// the trace ID (log.go) — so a slow request can be reconstructed
// end-to-end from observability output alone.
//
// Everything is nil-safe in the telemetry idiom: code instrumented with
// StartSpan pays one context lookup when no trace is installed, so the
// embedded Service and the CLIs run untraced at full speed.
package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Bounds in the SetRecordCaps idiom: a trace that lives as long as one
// request still must not grow without limit when a pathological request
// fans out (a 256-item batch opens spans per item), so spans per trace
// and attributes per span are capped, with drops counted and surfaced on
// the flight record.
const (
	// DefaultMaxSpans bounds the spans recorded per trace.
	DefaultMaxSpans = 512
	// DefaultMaxAttrs bounds the attributes recorded per span.
	DefaultMaxAttrs = 32
)

// Trace is one request's observability scope: an ID and a tree of spans.
// A Trace is safe for concurrent use — batch items and singleflight
// owners append spans from their own goroutines.
type Trace struct {
	id    string
	start time.Time

	maxSpans int32
	maxAttrs int32

	nSpans       atomic.Int32
	droppedSpans atomic.Int64
	droppedAttrs atomic.Int64

	root *Span
}

// NewTrace starts a trace identified by id (NewID() when empty) whose
// root span is named rootName. Caps default to DefaultMaxSpans /
// DefaultMaxAttrs; SetCaps overrides them before spans are added.
func NewTrace(id, rootName string) *Trace {
	if id == "" {
		id = NewID()
	}
	tr := &Trace{
		id:       id,
		start:    time.Now(),
		maxSpans: DefaultMaxSpans,
		maxAttrs: DefaultMaxAttrs,
	}
	tr.root = &Span{tr: tr, name: rootName}
	tr.nSpans.Store(1)
	return tr
}

// SetCaps bounds the spans per trace and attributes per span (0 keeps
// the default for that bound). Call before recording spans.
func (t *Trace) SetCaps(maxSpans, maxAttrs int) {
	if t == nil {
		return
	}
	if maxSpans > 0 {
		t.maxSpans = int32(maxSpans)
	}
	if maxAttrs > 0 {
		t.maxAttrs = int32(maxAttrs)
	}
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil on nil).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Dropped returns how many spans and attributes the caps discarded.
func (t *Trace) Dropped() (spans, attrs int64) {
	if t == nil {
		return 0, 0
	}
	return t.droppedSpans.Load(), t.droppedAttrs.Load()
}

// since returns the trace-relative timestamp.
func (t *Trace) since() time.Duration { return time.Since(t.start) }

// Span is one timed stage of a request. Spans form a tree under the
// trace root; a span and its attribute map are guarded by the span's own
// mutex, so sibling stages record concurrently without contention on a
// shared structure (no cross-request state exists at all).
type Span struct {
	tr   *Trace
	name string

	mu       sync.Mutex
	start    time.Duration
	dur      time.Duration
	ended    bool
	attrs    map[string]any
	children []*Span
}

// StartChild opens a child span; nil-safe (returns nil, which is itself
// a valid no-op span). Returns nil when the trace's span cap is reached,
// counting the drop.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	if t.nSpans.Add(1) > t.maxSpans {
		t.nSpans.Add(-1)
		t.droppedSpans.Add(1)
		return nil
	}
	child := &Span{tr: t, name: name, start: t.since()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// SetAttr attaches a key/value to the span (values must be
// JSON-encodable); no-op on nil, dropped and counted past the cap.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	if _, exists := s.attrs[key]; !exists && len(s.attrs) >= int(s.tr.maxAttrs) {
		s.mu.Unlock()
		s.tr.droppedAttrs.Add(1)
		return
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Attr returns the value recorded under key (nil when absent or on a
// nil span).
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// End closes the span, fixing its duration. Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.since()
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = now - s.start
	}
	s.mu.Unlock()
}

// SpanSnapshot is the immutable, JSON-encodable copy of a span subtree
// taken when a request record is cut. A span still running at snapshot
// time (a detached singleflight search outliving an abandoning waiter)
// reports the duration so far and running=true.
type SpanSnapshot struct {
	Name     string          `json:"name"`
	StartNs  int64           `json:"start_ns"`
	DurNs    int64           `json:"dur_ns"`
	Running  bool            `json:"running,omitempty"`
	Attrs    map[string]any  `json:"attrs,omitempty"`
	Children []*SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the subtree rooted at s (nil on nil).
func (s *Span) Snapshot() *SpanSnapshot {
	if s == nil {
		return nil
	}
	now := s.tr.since()
	s.mu.Lock()
	snap := &SpanSnapshot{
		Name:    s.name,
		StartNs: s.start.Nanoseconds(),
		DurNs:   s.dur.Nanoseconds(),
		Running: !s.ended,
	}
	if !s.ended {
		snap.DurNs = (now - s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// Find returns the first descendant (depth-first, pre-order, the
// snapshot itself included) named name, or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Walk visits the snapshot subtree depth-first, pre-order.
func (s *SpanSnapshot) Walk(fn func(*SpanSnapshot)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// AttrKeys returns the snapshot's attribute names sorted, for
// deterministic rendering.
func (s *SpanSnapshot) AttrKeys() []string {
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Context plumbing. Two keys: the trace (stable for the request) and the
// current span (rebound by every StartSpan so children nest correctly).
type traceKey struct{}
type spanKey struct{}

// WithTrace installs tr on the context; the current span becomes the
// trace root.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceKey{}, tr)
	return context.WithValue(ctx, spanKey{}, tr.root)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// TraceID returns the context's trace ID, or "".
func TraceID(ctx context.Context) string { return TraceFrom(ctx).ID() }

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the context's current span and returns a
// context with the child current. When the context carries no trace the
// original context and a nil (no-op) span come back, so instrumented
// code needs no enabled-check.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	if child == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey{}, child), child
}
