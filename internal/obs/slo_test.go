package obs

import (
	"strings"
	"testing"
	"time"

	"looppart/internal/telemetry"
)

func TestParseObjective(t *testing.T) {
	o, err := ParseObjective("/v1/plan=250ms@0.95")
	if err != nil {
		t.Fatal(err)
	}
	if o.Route != "/v1/plan" || o.Latency != 250*time.Millisecond || o.Target != 0.95 {
		t.Fatalf("parsed %+v", o)
	}
	o, err = ParseObjective("/v1/plan/batch=2s")
	if err != nil {
		t.Fatal(err)
	}
	if o.Target != DefaultTarget {
		t.Fatalf("default target = %g, want %g", o.Target, DefaultTarget)
	}
	for _, bad := range []string{"", "/v1/plan", "=250ms", "/v1/plan=abc", "/v1/plan=250ms@1.5", "/v1/plan=250ms@x", "/v1/plan=-1s"} {
		if _, err := ParseObjective(bad); err == nil {
			t.Errorf("ParseObjective(%q) accepted a bad spec", bad)
		}
	}
}

func TestSLOTrackerBurnRateAndExemplar(t *testing.T) {
	tr := NewSLOTracker(Objective{Route: "/v1/plan", Latency: 10 * time.Millisecond, Target: 0.9})

	// 90 fast + 10 slow = 10% breaches over a 10% budget: burn rate 1.
	for i := 0; i < 90; i++ {
		if breached, tracked := tr.Observe("/v1/plan", time.Millisecond, "fast"); breached || !tracked {
			t.Fatal("fast request misclassified")
		}
	}
	for i := 0; i < 10; i++ {
		if breached, _ := tr.Observe("/v1/plan", 50*time.Millisecond, "slow-trace"); !breached {
			t.Fatal("slow request not marked breached")
		}
	}
	if _, tracked := tr.Observe("/unknown", time.Second, "x"); tracked {
		t.Fatal("untracked route reported tracked")
	}

	sts := tr.Status()
	if len(sts) != 1 {
		t.Fatalf("%d statuses, want 1", len(sts))
	}
	st := sts[0]
	if st.Total != 100 || st.Breached != 10 {
		t.Fatalf("totals = %d/%d, want 100/10", st.Total, st.Breached)
	}
	if st.BurnRate < 0.99 || st.BurnRate > 1.01 {
		t.Fatalf("burn rate = %g, want 1.0", st.BurnRate)
	}
	if st.Exemplar == nil || st.Exemplar.TraceID != "slow-trace" {
		t.Fatalf("exemplar = %+v, want the slow trace", st.Exemplar)
	}
	if st.P50 != time.Millisecond || st.P95 != 50*time.Millisecond || st.P99 != 50*time.Millisecond {
		t.Fatalf("percentiles = %v/%v/%v", st.P50, st.P95, st.P99)
	}
}

func TestSLOTrackerWindowSlides(t *testing.T) {
	tr := NewSLOTracker(Objective{Route: "/r", Latency: 10 * time.Millisecond, Target: 0.99})
	// Fill the window with breaches, then push them all out with fast
	// requests: the burn rate must recover even though the cumulative
	// breach counter keeps history.
	for i := 0; i < sloWindow; i++ {
		tr.Observe("/r", time.Second, "slow")
	}
	if st := tr.Status()[0]; st.BurnRate < 99 {
		t.Fatalf("all-breach burn rate = %g, want 1/(1-0.99) = 100", st.BurnRate)
	}
	for i := 0; i < sloWindow; i++ {
		tr.Observe("/r", time.Microsecond, "fast")
	}
	st := tr.Status()[0]
	if st.BurnRate != 0 {
		t.Fatalf("recovered burn rate = %g, want 0", st.BurnRate)
	}
	if st.Breached != sloWindow {
		t.Fatalf("cumulative breaches = %d, want %d", st.Breached, sloWindow)
	}
}

func TestPercentiles(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	ps := Percentiles(lats, 50, 95, 99)
	if ps[0] != 50*time.Millisecond || ps[1] != 95*time.Millisecond || ps[2] != 99*time.Millisecond {
		t.Fatalf("percentiles = %v", ps)
	}
	if got := Percentiles(nil, 50); got[0] != 0 {
		t.Fatalf("empty percentile = %v, want 0", got[0])
	}
}

func TestSLOPublish(t *testing.T) {
	tr := NewSLOTracker(Objective{Route: "/v1/plan", Latency: 10 * time.Millisecond, Target: 0.9})
	tr.Observe("/v1/plan", time.Second, "slow")
	reg := telemetry.New()
	tr.Publish(reg)
	var buf strings.Builder
	if err := reg.WriteMetricsText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"server_slo__v1_plan_burn_rate", "server_slo__v1_plan_p99_seconds", "server_slo__v1_plan_breaches 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics text missing %q:\n%s", want, out)
		}
	}
}

func TestNilSLOTrackerSafe(t *testing.T) {
	var tr *SLOTracker
	tr.Set(Objective{Route: "/r", Latency: time.Second})
	if _, tracked := tr.Observe("/r", time.Second, "x"); tracked {
		t.Fatal("nil tracker tracked a route")
	}
	if tr.Status() != nil || tr.Objectives() != nil {
		t.Fatal("nil tracker must return nil")
	}
	tr.Publish(nil)
}
