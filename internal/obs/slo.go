package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"looppart/internal/telemetry"
)

// Objective is one route's latency SLO: Target fraction of requests must
// complete within Latency (e.g. 99% of /v1/plan under 250ms).
type Objective struct {
	Route   string        `json:"route"`
	Latency time.Duration `json:"latency"`
	Target  float64       `json:"target"`
}

// DefaultTarget is the objective fraction when a spec names none.
const DefaultTarget = 0.99

// ParseObjective parses a "-slo" flag spec: ROUTE=LATENCY[@TARGET], e.g.
// "/v1/plan=250ms@0.99" or "/v1/plan/batch=2s".
func ParseObjective(spec string) (Objective, error) {
	route, rest, ok := strings.Cut(spec, "=")
	if !ok || route == "" {
		return Objective{}, fmt.Errorf("obs: SLO spec %q is not ROUTE=LATENCY[@TARGET]", spec)
	}
	latStr, targetStr, hasTarget := strings.Cut(rest, "@")
	lat, err := time.ParseDuration(latStr)
	if err != nil || lat <= 0 {
		return Objective{}, fmt.Errorf("obs: SLO spec %q has a bad latency: %v", spec, err)
	}
	target := DefaultTarget
	if hasTarget {
		if target, err = strconv.ParseFloat(targetStr, 64); err != nil || target <= 0 || target >= 1 {
			return Objective{}, fmt.Errorf("obs: SLO spec %q has a bad target (want 0 < t < 1)", spec)
		}
	}
	return Objective{Route: route, Latency: lat, Target: target}, nil
}

// sloWindow is how many recent requests the burn rate and percentile
// gauges are computed over, per route.
const sloWindow = 1024

// Exemplar names one concrete slow request: the trace ID a dashboard
// reader can paste into /debug/flightrec to see the whole span tree.
type Exemplar struct {
	Route     string        `json:"route"`
	TraceID   string        `json:"trace_id"`
	Latency   time.Duration `json:"latency"`
	Objective time.Duration `json:"objective"`
	When      time.Time     `json:"when"`
}

// routeSLO tracks one route's objective.
type routeSLO struct {
	obj      Objective
	total    atomic.Int64
	breached atomic.Int64

	// Latest breach exemplar (lock-free, last-write-wins).
	exemplar atomic.Pointer[Exemplar]

	// Sliding window of recent latencies, for burn rate and percentiles.
	mu     sync.Mutex
	window [sloWindow]int64
	n      int // filled entries
	next   int // ring cursor
}

// SLOTracker matches request latencies against per-route objectives and
// derives error-budget burn rates. Safe for concurrent use.
type SLOTracker struct {
	mu     sync.RWMutex
	routes map[string]*routeSLO
}

// NewSLOTracker returns a tracker with the given objectives installed.
func NewSLOTracker(objectives ...Objective) *SLOTracker {
	t := &SLOTracker{routes: make(map[string]*routeSLO, len(objectives))}
	for _, o := range objectives {
		t.Set(o)
	}
	return t
}

// Set installs (or replaces) a route objective.
func (t *SLOTracker) Set(o Objective) {
	if t == nil || o.Route == "" {
		return
	}
	if o.Target <= 0 || o.Target >= 1 {
		o.Target = DefaultTarget
	}
	t.mu.Lock()
	t.routes[o.Route] = &routeSLO{obj: o}
	t.mu.Unlock()
}

// Objectives returns the installed objectives, sorted by route.
func (t *SLOTracker) Objectives() []Objective {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	out := make([]Objective, 0, len(t.routes))
	for _, r := range t.routes {
		out = append(out, r.obj)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// Observe records one request against its route's objective. breached
// reports whether the request exceeded the objective latency; tracked is
// false when the route has no objective (nothing recorded).
func (t *SLOTracker) Observe(route string, latency time.Duration, traceID string) (breached, tracked bool) {
	if t == nil {
		return false, false
	}
	t.mu.RLock()
	r := t.routes[route]
	t.mu.RUnlock()
	if r == nil {
		return false, false
	}
	r.total.Add(1)
	breached = latency > r.obj.Latency
	if breached {
		r.breached.Add(1)
		r.exemplar.Store(&Exemplar{
			Route: route, TraceID: traceID,
			Latency: latency, Objective: r.obj.Latency, When: time.Now(),
		})
	}
	r.mu.Lock()
	r.window[r.next] = int64(latency)
	r.next = (r.next + 1) % sloWindow
	if r.n < sloWindow {
		r.n++
	}
	r.mu.Unlock()
	return breached, true
}

// RouteStatus is one route's point-in-time SLO state.
type RouteStatus struct {
	Objective Objective `json:"objective"`
	Total     int64     `json:"total"`
	Breached  int64     `json:"breached"`
	// BurnRate is the windowed breach fraction over the error budget
	// (1 - target): 1.0 = burning the budget exactly, >1 = on course to
	// miss the SLO, 0 = no recent breaches.
	BurnRate float64 `json:"burn_rate"`
	// P50/P95/P99 are windowed latency percentiles.
	P50, P95, P99 time.Duration `json:"-"`
	P50Ns         int64         `json:"p50_ns"`
	P95Ns         int64         `json:"p95_ns"`
	P99Ns         int64         `json:"p99_ns"`
	Exemplar      *Exemplar     `json:"exemplar,omitempty"`
}

// Status returns the per-route SLO states, sorted by route.
func (t *SLOTracker) Status() []RouteStatus {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	routes := make([]*routeSLO, 0, len(t.routes))
	for _, r := range t.routes {
		routes = append(routes, r)
	}
	t.mu.RUnlock()
	sort.Slice(routes, func(i, j int) bool { return routes[i].obj.Route < routes[j].obj.Route })

	out := make([]RouteStatus, 0, len(routes))
	for _, r := range routes {
		st := RouteStatus{
			Objective: r.obj,
			Total:     r.total.Load(),
			Breached:  r.breached.Load(),
			Exemplar:  r.exemplar.Load(),
		}
		r.mu.Lock()
		lat := make([]int64, r.n)
		copy(lat, r.window[:r.n])
		r.mu.Unlock()
		if len(lat) > 0 {
			breach := 0
			for _, l := range lat {
				if time.Duration(l) > r.obj.Latency {
					breach++
				}
			}
			frac := float64(breach) / float64(len(lat))
			st.BurnRate = frac / (1 - r.obj.Target)
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			st.P50 = time.Duration(percentile(lat, 50))
			st.P95 = time.Duration(percentile(lat, 95))
			st.P99 = time.Duration(percentile(lat, 99))
			st.P50Ns, st.P95Ns, st.P99Ns = int64(st.P50), int64(st.P95), int64(st.P99)
		}
		out = append(out, st)
	}
	return out
}

// percentile returns the p-th percentile of sorted (nearest-rank).
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// Percentiles computes nearest-rank percentiles of arbitrary durations
// (shared with the loadgen's client-side latency report). ps are
// percents; the input need not be sorted.
func Percentiles(latencies []time.Duration, ps ...int) []time.Duration {
	sorted := make([]int64, len(latencies))
	for i, d := range latencies {
		sorted[i] = int64(d)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]time.Duration, len(ps))
	for i, p := range ps {
		out[i] = time.Duration(percentile(sorted, p))
	}
	return out
}

// Publish mirrors the SLO state into the telemetry registry, one gauge
// set per route, so /metrics exposes burn rates and windowed
// percentiles next to the serving counters.
func (t *SLOTracker) Publish(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	for _, st := range t.Status() {
		prefix := "server.slo." + st.Objective.Route + "."
		reg.Gauge(prefix + "burn_rate").Set(st.BurnRate)
		reg.Gauge(prefix + "objective_seconds").Set(st.Objective.Latency.Seconds())
		reg.Gauge(prefix + "target").Set(st.Objective.Target)
		reg.Gauge(prefix + "requests").Set(float64(st.Total))
		reg.Gauge(prefix + "breaches").Set(float64(st.Breached))
		reg.Gauge(prefix + "p50_seconds").Set(st.P50.Seconds())
		reg.Gauge(prefix + "p95_seconds").Set(st.P95.Seconds())
		reg.Gauge(prefix + "p99_seconds").Set(st.P99.Seconds())
	}
}
