package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultRecorderSize is the flight-recorder ring capacity when none is
// configured.
const DefaultRecorderSize = 256

// Record is one completed request as the flight recorder keeps it: the
// request's identity and outcome plus the full span tree and drop
// accounting. Records are immutable once published.
type Record struct {
	TraceID   string    `json:"trace_id"`
	Route     string    `json:"route"`
	Status    int       `json:"status"`
	Start     time.Time `json:"start"`
	LatencyNs int64     `json:"latency_ns"`

	// Cache and Key mirror the request's serving path (miss | hit |
	// dedup | bypass, and the canonical plan key) when the route has one.
	Cache string `json:"cache,omitempty"`
	Key   string `json:"key,omitempty"`
	Error string `json:"error,omitempty"`

	// SLOBreach marks a request that exceeded its route's latency
	// objective (the records disk snapshots are cut for, with 5xx).
	SLOBreach bool `json:"slo_breach,omitempty"`

	Spans *SpanSnapshot `json:"spans,omitempty"`

	// DroppedSpans / DroppedAttrs report what the trace's caps discarded,
	// so a truncated tree is never mistaken for a complete one.
	DroppedSpans int64 `json:"dropped_spans,omitempty"`
	DroppedAttrs int64 `json:"dropped_attrs,omitempty"`
}

// Latency returns the request latency as a duration.
func (r *Record) Latency() time.Duration { return time.Duration(r.LatencyNs) }

// Recorder is the flight recorder: a fixed-size lock-free ring of the
// last N completed request records. Writers claim a slot with one atomic
// add and publish with one atomic pointer store; readers snapshot with
// atomic loads. Memory is bounded by N regardless of request volume —
// older records are overwritten, and the overwrite count is exposed so
// dashboards can tell "quiet service" from "ring cycling fast".
type Recorder struct {
	slots []atomic.Pointer[Record]
	next  atomic.Uint64

	overwritten atomic.Int64

	// Disk snapshotting (SnapshotTo): at most one snapshot per
	// minSnapGap, so a 5xx storm cannot turn the recorder into a
	// disk-filling loop.
	snapDir        string
	lastSnapNs     atomic.Int64
	snapWrites     atomic.Int64
	snapSuppressed atomic.Int64
	snapErrors     atomic.Int64
}

// minSnapGap is the minimum interval between automatic disk snapshots.
const minSnapGap = time.Second

// NewRecorder returns a flight recorder holding the last n records
// (DefaultRecorderSize when n <= 0).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRecorderSize
	}
	return &Recorder{slots: make([]atomic.Pointer[Record], n)}
}

// SnapshotTo enables automatic disk snapshots into dir (created if
// missing) for records Add deems snapshot-worthy (5xx or SLO breach).
func (r *Recorder) SnapshotTo(dir string) error {
	if r == nil || dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	r.snapDir = dir
	return nil
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Add publishes a completed request record; no-op on nil. Records with a
// 5xx status or an SLO breach are additionally snapshotted to disk when
// SnapshotTo configured a directory.
func (r *Recorder) Add(rec *Record) {
	if r == nil || rec == nil {
		return
	}
	i := r.next.Add(1) - 1
	if i >= uint64(len(r.slots)) {
		r.overwritten.Add(1)
	}
	r.slots[i%uint64(len(r.slots))].Store(rec)
	if r.snapDir != "" && (rec.Status >= 500 || rec.SLOBreach) {
		r.snapshot(rec)
	}
}

// snapshot writes rec to the snapshot directory, rate-limited to one
// write per minSnapGap.
func (r *Recorder) snapshot(rec *Record) {
	now := time.Now().UnixNano()
	last := r.lastSnapNs.Load()
	if now-last < int64(minSnapGap) || !r.lastSnapNs.CompareAndSwap(last, now) {
		r.snapSuppressed.Add(1)
		return
	}
	name := fmt.Sprintf("flightrec-%s-%d.json", sanitizeFilename(rec.TraceID), now)
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(r.snapDir, name), append(buf, '\n'), 0o644)
	}
	if err != nil {
		r.snapErrors.Add(1)
		return
	}
	r.snapWrites.Add(1)
}

// sanitizeFilename keeps trace-ID characters safe for a filename.
func sanitizeFilename(s string) string {
	var b strings.Builder
	for i := 0; i < len(s) && i < maxIDLen; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Records returns the retained records, newest first.
func (r *Recorder) Records() []*Record {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	size := uint64(len(r.slots))
	count := n
	if count > size {
		count = size
	}
	out := make([]*Record, 0, count)
	for k := uint64(0); k < count; k++ {
		// Newest first: walk back from the last claimed slot. A slot may
		// briefly be nil (claimed, not yet published) or already
		// overwritten by a racing writer; both are fine to skip/accept —
		// the recorder is a diagnostic ring, not a ledger.
		if rec := r.slots[(n-1-k)%size].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// RecorderStats is the recorder's own accounting.
type RecorderStats struct {
	Capacity       int   `json:"capacity"`
	Recorded       int64 `json:"recorded"`
	Overwritten    int64 `json:"overwritten"`
	SnapWrites     int64 `json:"snapshot_writes,omitempty"`
	SnapSuppressed int64 `json:"snapshot_suppressed,omitempty"`
	SnapErrors     int64 `json:"snapshot_errors,omitempty"`
}

// Stats returns the recorder counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	return RecorderStats{
		Capacity:       len(r.slots),
		Recorded:       int64(r.next.Load()),
		Overwritten:    r.overwritten.Load(),
		SnapWrites:     r.snapWrites.Load(),
		SnapSuppressed: r.snapSuppressed.Load(),
		SnapErrors:     r.snapErrors.Load(),
	}
}

// Filter selects flight records. Zero values match everything.
type Filter struct {
	// TraceID matches exactly; Key matches as a substring of the
	// canonical plan key.
	TraceID string
	Key     string
	// Status matches exactly when > 0; StatusClass matches by hundreds
	// (5 matches 500..599) when > 0.
	Status      int
	StatusClass int
	// MinLatency keeps records at least this slow.
	MinLatency time.Duration
	// BreachOnly keeps only SLO-breaching records.
	BreachOnly bool
}

// Match reports whether rec passes the filter.
func (f Filter) Match(rec *Record) bool {
	if f.TraceID != "" && rec.TraceID != f.TraceID {
		return false
	}
	if f.Key != "" && !strings.Contains(rec.Key, f.Key) {
		return false
	}
	if f.Status > 0 && rec.Status != f.Status {
		return false
	}
	if f.StatusClass > 0 && rec.Status/100 != f.StatusClass {
		return false
	}
	if f.MinLatency > 0 && rec.Latency() < f.MinLatency {
		return false
	}
	if f.BreachOnly && !rec.SLOBreach {
		return false
	}
	return true
}
