package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("", "server.plan")
	if tr.ID() == "" {
		t.Fatal("empty generated trace ID")
	}
	ctx := WithTrace(context.Background(), tr)
	if got := TraceID(ctx); got != tr.ID() {
		t.Fatalf("TraceID(ctx) = %q, want %q", got, tr.ID())
	}

	ctx1, cache := StartSpan(ctx, "cache.lookup")
	cache.SetAttr("outcome", "miss")
	cache.End()
	if SpanFrom(ctx1) != cache {
		t.Fatal("StartSpan did not rebind the current span")
	}

	ctx2, sf := StartSpan(ctx, "singleflight")
	_, search := StartSpan(ctx2, "search")
	search.SetAttr("evaluated", 7)
	search.End()
	sf.End()

	snap := tr.Root().Snapshot()
	if snap.Find("cache.lookup") == nil || snap.Find("singleflight") == nil {
		t.Fatalf("missing spans in snapshot: %+v", snap)
	}
	s := snap.Find("search")
	if s == nil {
		t.Fatal("search span missing")
	}
	if got := s.Attrs["evaluated"]; got != 7 {
		t.Fatalf("search evaluated attr = %v, want 7", got)
	}
	// search must nest under singleflight, not under the root.
	if snap.Find("singleflight").Find("search") == nil {
		t.Fatal("search span is not a child of singleflight")
	}
	var names []string
	snap.Walk(func(s *SpanSnapshot) { names = append(names, s.Name) })
	if strings.Join(names, ",") != "server.plan,cache.lookup,singleflight,search" {
		t.Fatalf("walk order = %v", names)
	}

	// The whole snapshot must be JSON-encodable (the flight recorder and
	// /debug/flightrec serve it).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

func TestStartSpanWithoutTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("expected nil span without a trace")
	}
	if ctx2 != ctx {
		t.Fatal("expected the original context back")
	}
	// All nil-receiver methods must be safe.
	sp.SetAttr("k", "v")
	sp.End()
	if sp.Snapshot() != nil || sp.StartChild("child") != nil {
		t.Fatal("nil span methods must return nil")
	}
	if TraceFrom(ctx) != nil || TraceID(ctx) != "" || SpanFrom(ctx) != nil {
		t.Fatal("empty context must carry no trace")
	}
}

func TestTraceCapsDropAndCount(t *testing.T) {
	tr := NewTrace("capped", "root")
	tr.SetCaps(4, 2) // root + 3 children; 2 attrs per span

	root := tr.Root()
	var kept int
	for i := 0; i < 10; i++ {
		if root.StartChild("c") != nil {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d children, want 3 (cap 4 includes the root)", kept)
	}
	root.SetAttr("a", 1)
	root.SetAttr("b", 2)
	root.SetAttr("c", 3) // dropped
	root.SetAttr("a", 9) // overwrite of an existing key is not a drop
	ds, da := tr.Dropped()
	if ds != 7 || da != 1 {
		t.Fatalf("Dropped() = (%d, %d), want (7, 1)", ds, da)
	}
	if root.Attr("a") != 9 || root.Attr("c") != nil {
		t.Fatalf("attrs wrong after caps: a=%v c=%v", root.Attr("a"), root.Attr("c"))
	}
}

func TestRunningSpanSnapshot(t *testing.T) {
	tr := NewTrace("", "root")
	sp := tr.Root().StartChild("detached.search")
	time.Sleep(time.Millisecond)
	snap := tr.Root().Snapshot().Find("detached.search")
	if snap == nil || !snap.Running {
		t.Fatalf("running span not marked running: %+v", snap)
	}
	if snap.DurNs <= 0 {
		t.Fatalf("running span should report elapsed time, got %d", snap.DurNs)
	}
	sp.End()
	snap = tr.Root().Snapshot().Find("detached.search")
	if snap.Running {
		t.Fatal("ended span still marked running")
	}
}

func TestConcurrentSpansOneTrace(t *testing.T) {
	tr := NewTrace("", "root")
	tr.SetCaps(4096, 0)
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, sp := StartSpan(ctx, "work")
				sp.SetAttr("g", g)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	snap := tr.Root().Snapshot()
	if len(snap.Children) != 800 {
		t.Fatalf("recorded %d spans, want 800", len(snap.Children))
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
		if SanitizeID(id) != id {
			t.Fatalf("generated ID %q does not pass SanitizeID", id)
		}
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"abc-123":                  "abc-123",
		"":                         "",
		"has space":                "",
		"quote\"":                  "",
		"back\\slash":              "",
		"sla/sh":                   "",
		"ctrl\x01":                 "",
		strings.Repeat("a", 128):   strings.Repeat("a", 128),
		strings.Repeat("a", 129):   "",
		"UPPER_lower.dots:colons!": "UPPER_lower.dots:colons!",
	}
	for in, want := range cases {
		if got := SanitizeID(in); got != want {
			t.Errorf("SanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}
