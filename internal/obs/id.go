package obs

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Trace-ID generation: a per-process random prefix read once at startup
// plus a monotone counter. IDs are unique within a process by the
// counter and across restarts by the prefix, without a syscall or a
// random read per request.
var (
	idPrefix  = newIDPrefix()
	idCounter atomic.Uint64
)

func newIDPrefix() string {
	var b [6]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degrade to counter-only uniqueness; tracing must not take the
		// process down.
		return "000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewID returns a fresh trace ID, e.g. "f3a91c04be72-000000000001".
func NewID() string {
	return fmt.Sprintf("%s-%012x", idPrefix, idCounter.Add(1))
}

// maxIDLen bounds accepted client-supplied trace IDs.
const maxIDLen = 128

// SanitizeID validates a client-supplied trace ID (the X-Trace-Id
// header): printable ASCII without spaces, quotes, or backslashes (so
// IDs embed safely in log lines, metrics exemplars, and filenames), at
// most 128 bytes. Returns "" if unusable — the caller generates one.
func SanitizeID(id string) string {
	if id == "" || len(id) > maxIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' || c == '/' {
			return ""
		}
	}
	return id
}
