package obs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

func rec(trace string, status int, latency time.Duration) *Record {
	return &Record{
		TraceID: trace, Route: "/v1/plan", Status: status,
		Start: time.Now(), LatencyNs: int64(latency),
	}
}

func TestRecorderRingNewestFirst(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Add(rec(string(rune('a'+i)), 200, time.Millisecond))
	}
	got := r.Records()
	if len(got) != 4 {
		t.Fatalf("retained %d records, want 4", len(got))
	}
	want := []string{"f", "e", "d", "c"}
	for i, w := range want {
		if got[i].TraceID != w {
			t.Fatalf("records[%d] = %q, want %q (newest first)", i, got[i].TraceID, w)
		}
	}
	st := r.Stats()
	if st.Recorded != 6 || st.Overwritten != 2 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRecorderBurstHoldsMemoryFlat is the ring-cap regression guard: a
// 10k-request burst through a 256-slot recorder must retain exactly the
// ring (not the burst), count the overwrites, and leave the heap where
// it started once the transient records are collected.
func TestRecorderBurstHoldsMemoryFlat(t *testing.T) {
	r := NewRecorder(256)

	burst := func(n int, start int) {
		for i := 0; i < n; i++ {
			tr := NewTrace("", "server.plan")
			tr.SetCaps(8, 4)
			_, sp := StartSpan(WithTrace(context.Background(), tr), "cache.lookup")
			sp.SetAttr("outcome", "hit")
			sp.End()
			rc := rec(tr.ID(), 200, time.Millisecond)
			rc.Spans = tr.Root().Snapshot()
			r.Add(rc)
		}
	}

	// Warm up, then measure the live heap with the ring full.
	burst(1000, 0)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	burst(10000, 1000)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if got := len(r.Records()); got != 256 {
		t.Fatalf("ring holds %d records, want 256", got)
	}
	st := r.Stats()
	if st.Recorded != 11000 || st.Overwritten != 11000-256 {
		t.Fatalf("stats = %+v, want 11000 recorded / %d overwritten", st, 11000-256)
	}
	// The ring was already full before the measured burst, so live heap
	// must not grow with burst size. Allow generous slack for runtime
	// noise: a leak of 10k records with span trees would be megabytes.
	const slack = 1 << 20
	if after.HeapAlloc > before.HeapAlloc+slack {
		t.Fatalf("heap grew %d bytes across a 10k burst (want < %d): ring is not bounding memory",
			after.HeapAlloc-before.HeapAlloc, slack)
	}
}

func TestRecorderConcurrentAdd(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(rec("t", 200, time.Millisecond))
			}
		}()
	}
	wg.Wait()
	if got := len(r.Records()); got != 64 {
		t.Fatalf("retained %d records, want 64", got)
	}
	if st := r.Stats(); st.Recorded != 4000 {
		t.Fatalf("recorded %d, want 4000", st.Recorded)
	}
}

func TestRecorderFilter(t *testing.T) {
	slow := rec("slow-1", 200, 80*time.Millisecond)
	slow.Key = "nest:abc"
	slow.SLOBreach = true
	fast := rec("fast-1", 200, time.Millisecond)
	fast.Key = "nest:xyz"
	failed := rec("err-1", 503, 2*time.Millisecond)

	for _, tc := range []struct {
		name string
		f    Filter
		want map[*Record]bool
	}{
		{"all", Filter{}, map[*Record]bool{slow: true, fast: true, failed: true}},
		{"trace", Filter{TraceID: "slow-1"}, map[*Record]bool{slow: true}},
		{"key", Filter{Key: "abc"}, map[*Record]bool{slow: true}},
		{"status", Filter{Status: 503}, map[*Record]bool{failed: true}},
		{"class", Filter{StatusClass: 5}, map[*Record]bool{failed: true}},
		{"latency", Filter{MinLatency: 10 * time.Millisecond}, map[*Record]bool{slow: true}},
		{"breach", Filter{BreachOnly: true}, map[*Record]bool{slow: true}},
	} {
		for _, r := range []*Record{slow, fast, failed} {
			if got := tc.f.Match(r); got != tc.want[r] {
				t.Errorf("%s: Match(%s) = %v, want %v", tc.name, r.TraceID, got, tc.want[r])
			}
		}
	}
}

func TestRecorderDiskSnapshot(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(8)
	if err := r.SnapshotTo(filepath.Join(dir, "snaps")); err != nil {
		t.Fatal(err)
	}

	r.Add(rec("fine", 200, time.Millisecond)) // healthy: no snapshot
	bad := rec("boom-1", 500, time.Millisecond)
	bad.Error = "verification failed"
	r.Add(bad)
	breach := rec("slow-9", 200, time.Second)
	breach.SLOBreach = true
	r.Add(breach) // rate-limited: within minSnapGap of the 500 snapshot

	files, err := os.ReadDir(filepath.Join(dir, "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("wrote %d snapshots, want 1 (rate-limited)", len(files))
	}
	buf, err := os.ReadFile(filepath.Join(dir, "snaps", files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatalf("snapshot is not a Record: %v", err)
	}
	if got.TraceID != "boom-1" || got.Status != 500 {
		t.Fatalf("snapshot = %+v, want the 500 record", got)
	}
	st := r.Stats()
	if st.SnapWrites != 1 || st.SnapSuppressed != 1 {
		t.Fatalf("snapshot stats = %+v, want 1 write / 1 suppressed", st)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(rec("x", 200, time.Millisecond))
	if r.Records() != nil || r.Cap() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	if st := r.Stats(); st.Recorded != 0 {
		t.Fatalf("nil stats = %+v", st)
	}
}
