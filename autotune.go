package looppart

import (
	"context"

	"looppart/internal/autotune"
	"looppart/internal/telemetry"
)

// AutotuneOptions parameterizes Program.Autotune.
type AutotuneOptions struct {
	// TopK is how many analytically ranked candidates contest the
	// tournament (default 4).
	TopK int
	// Fingerprint supplies the calibrated cost constants; zero value
	// means the paper's model defaults.
	Fingerprint autotune.Fingerprint
	// CacheLines bounds each simulated cache during the tournament
	// replays; 0 = infinite.
	CacheLines int
	// Exec additionally times each candidate on real goroutines
	// (reported, never used for selection).
	Exec bool
}

// Autotune partitions like Partition but arbitrates among the analytic
// search's top-K candidates by measured replay: the returned plan is the
// tournament winner, whose simulated miss count is never above the pure
// analytic plan's (candidate 0 is the argmin and ties break toward it).
//
// Strategy handling mirrors Partition: Auto resolves to comm-free when a
// communication-free hyperplane exists (already zero communication —
// there is nothing for a measured tournament to improve, so none runs
// and the Result is nil), otherwise to a rect tournament. Rect and
// Skewed run their tournaments directly. The naive strategies (rows,
// columns, blocks, abraham-hudak) are fixed shapes with no candidate set;
// they fall through to Partition with a nil Result.
func (pr *Program) Autotune(procs int, strategy Strategy, opts AutotuneOptions) (*Plan, *autotune.Result, error) {
	return pr.AutotuneCtx(context.Background(), procs, strategy, opts)
}

// AutotuneCtx is Autotune with request-scoped tracing: when ctx carries an
// obs.Trace, the tournament records a "tournament" span (candidates, winner
// rank, measured misses). Without a trace it behaves exactly like Autotune.
func (pr *Program) AutotuneCtx(ctx context.Context, procs int, strategy Strategy, opts AutotuneOptions) (*Plan, *autotune.Result, error) {
	reg := telemetry.Active()
	switch strategy {
	case Auto:
		if plan, err := pr.PartitionCtx(ctx, procs, CommFree); err == nil {
			reg.Emit("strategy.auto", "comm-free", map[string]any{
				"reason": "a communication-free hyperplane partition exists; no tournament needed",
			})
			return plan, nil, nil
		}
		reg.Emit("strategy.auto", "rect", map[string]any{
			"reason": "no communication-free partition; tournament over footprint-optimal rectangles",
		})
		return pr.AutotuneCtx(ctx, procs, Rect, opts)
	case Rect, Skewed:
		res, err := autotune.RunTournamentCtx(ctx, pr.Analysis, autotune.TournamentOptions{
			Procs:       procs,
			Strategy:    strategy.String(),
			K:           opts.TopK,
			Fingerprint: opts.Fingerprint,
			CacheLines:  opts.CacheLines,
			Exec:        opts.Exec,
		})
		if err != nil {
			return nil, nil, err
		}
		w := res.WinnerCandidate()
		plan, err := pr.tilePlan(strategy, procs, w.Tile, w.PredictedFootprint, 0)
		if err != nil {
			return nil, nil, err
		}
		if strategy == Rect {
			// Keep the traffic prediction the analytic rect plan carries.
			tr, _ := pr.Analysis.RectTotalTraffic(w.Tile.Extents())
			plan.PredictedTraffic = tr
		}
		return plan, res, nil
	default:
		plan, err := pr.PartitionCtx(ctx, procs, strategy)
		return plan, nil, err
	}
}
