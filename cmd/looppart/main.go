// Command looppart analyzes a loop-nest program and reports its reference
// classes, footprint model, and recommended partition.
//
// Usage:
//
//	looppart [flags] <file.loop | example-name>
//
// The argument is a path to a loop-language source file, or the name of a
// built-in paper example (example2, example3, example6, example8,
// example9, example10, matmulsync, fig9stencil, ...).
//
// Flags:
//
//	-procs P        number of processors (default 16)
//	-strategy S     auto | rect | skewed | comm-free | rows | columns |
//	                blocks | abraham-hudak | lowerbound | oblivious
//	                (default auto)
//	-param N=V      bind a loop-bound parameter (repeatable)
//	-gen            also emit Go source for the tile kernel
//	-explain        print the decision trace (why the chosen shape won)
//	-trace FILE     write a Chrome trace-event JSON file
//	-metrics FILE   write a metrics dump (.json = JSON, else text)
//	-pprof ADDR     serve net/http/pprof on ADDR (e.g. :6060)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"looppart"
	"looppart/internal/cliflag"
	"looppart/internal/codegen"
	"looppart/internal/layout"
	"looppart/internal/paperex"
	"looppart/internal/telemetry"
)

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprint(map[string]int64(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p[name] = v
	return nil
}

var strategies = map[string]looppart.Strategy{
	"auto":          looppart.Auto,
	"rect":          looppart.Rect,
	"skewed":        looppart.Skewed,
	"comm-free":     looppart.CommFree,
	"rows":          looppart.Rows,
	"columns":       looppart.Columns,
	"blocks":        looppart.Blocks,
	"abraham-hudak": looppart.AbrahamHudak,
	"lowerbound":    looppart.LowerBound,
	"oblivious":     looppart.Oblivious,
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "looppart:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("looppart", flag.ContinueOnError)
	procs := fs.Int("procs", 16, "number of processors")
	strategyName := fs.String("strategy", "auto", "partitioning strategy")
	gen := fs.Bool("gen", false, "emit Go source for the tile kernel")
	explain := fs.Bool("explain", false, "print the decision trace (why the chosen shape won)")
	var obs cliflag.Obs
	obs.Register(fs)
	params := paramFlags{"N": 64, "T": 4}
	fs.Var(params, "param", "loop-bound parameter NAME=VALUE (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one program file, example name, or - for stdin; try: looppart -procs 100 example2")
	}
	src, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	strategy, ok := strategies[*strategyName]
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strategyName)
	}

	// -explain needs the decision trace even without an output file, so it
	// too turns the registry on.
	reg, err := obs.Setup()
	if err != nil {
		return err
	}
	if reg == nil && *explain {
		reg = telemetry.New()
	}
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	prog, err := looppart.Parse(src, params)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "=== program ===")
	fmt.Fprint(out, prog.Nest.String())
	fmt.Fprintln(out, "\n=== analysis ===")
	fmt.Fprint(out, prog.Report().String())

	plan, err := prog.Partition(*procs, strategy)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\n=== partition ===")
	fmt.Fprintln(out, plan)
	// The plan's exact communication certificate, one line. Skipped
	// quietly when the analysis cannot run (e.g. scan budget exceeded on
	// a huge space) — the plan itself is unaffected.
	if sum, err := plan.CommSummary(context.Background()); err == nil {
		fmt.Fprintf(out, "comm: %d words/epoch (max sent %d, mean %.1f, method %s)\n",
			sum.Words, sum.MaxSent, sum.MeanSent, sum.Method)
	}

	if reg != nil {
		// Simulate under the chosen plan so the trace and metrics dump
		// carry the miss counters the model predicted.
		m, err := plan.Simulate(looppart.SimOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\n=== simulation ===")
		fmt.Fprintln(out, m)
	}
	if *explain {
		fmt.Fprintln(out, "\n=== decision trace ===")
		fmt.Fprint(out, reg.FormatDecisionTrace())
	}
	if err := obs.Flush(reg); err != nil {
		return err
	}

	if *gen {
		if plan.Tile == nil {
			return fmt.Errorf("-gen requires a tile-shaped plan (strategy rect/skewed/blocks/...)")
		}
		layouts, err := layoutsFor(prog)
		if err != nil {
			return err
		}
		var p codegen.Program
		if plan.Tile.IsRect() {
			p, err = codegen.Generate(prog.Nest, layouts, codegen.Options{})
		} else {
			p, err = codegen.GenerateSkewed(prog.Nest, *plan.Tile, prog.Space(), layouts, codegen.Options{})
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\n=== generated kernel ===")
		fmt.Fprint(out, p.Source)
	}
	return nil
}

func loadProgram(arg string) (string, error) {
	if arg == "-" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	if src, ok := paperex.All[strings.ToLower(arg)]; ok {
		return src, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		names := make([]string, 0, len(paperex.All))
		for n := range paperex.All {
			names = append(names, n)
		}
		return "", fmt.Errorf("%v (or use a built-in example: %s)", err, strings.Join(names, ", "))
	}
	return string(data), nil
}

func layoutsFor(prog *looppart.Program) (map[string]codegen.ArrayLayout, error) {
	// Exact per-array bounds from the subscript interval analysis, so
	// the emitted kernel's folded offsets stay in range for every
	// iteration of the nest.
	mm, err := layout.MapNest(prog.Nest, 1)
	if err != nil {
		return nil, err
	}
	layouts := map[string]codegen.ArrayLayout{}
	for name, l := range mm.Arrays {
		size := make([]int64, len(l.Lo))
		for k := range size {
			size[k] = l.Hi[k] - l.Lo[k] + 1
		}
		layouts[name] = codegen.ArrayLayout{Name: name, Lo: l.Lo, Size: size}
	}
	return layouts, nil
}
