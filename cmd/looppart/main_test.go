package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"looppart"
	"looppart/internal/paperex"
)

func TestRunExample2(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-procs", "100", "example2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"=== analysis ===",
		"uniformly intersecting classes: 2",
		"communication-free normals: [[0 1]]",
		"comm-free plan for 100 procs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunWithStrategyAndParams(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-procs", "8", "-strategy", "rect", "-param", "N=24", "example8"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rect plan for 8 procs") {
		t.Errorf("output: %s", b.String())
	}
}

func TestRunGenEmitsKernel(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-procs", "4", "-strategy", "blocks", "-gen", "example6"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "func RunTile(") {
		t.Errorf("kernel missing from output")
	}
}

func TestRunGenRejectsSlabPlan(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-procs", "100", "-strategy", "comm-free", "-gen", "example2"}, &b)
	if err == nil || !strings.Contains(err.Error(), "tile-shaped plan") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.loop")
	src := "doall (i, 1, 16)\n A[i] = A[i] + 1\nenddoall\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-procs", "4", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "=== partition ===") {
		t.Error("partition section missing")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                 // no program
		{"nonexistent-file.loop"},          // unknown file
		{"-strategy", "bogus", "example2"}, // bad strategy
		{"-param", "N", "example2"},        // malformed param
		{"-procs", "100000", "example2"},   // infeasible
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestParamFlag(t *testing.T) {
	p := paramFlags{}
	if err := p.Set("N=32"); err != nil {
		t.Fatal(err)
	}
	if p["N"] != 32 {
		t.Fatalf("p = %v", p)
	}
	if err := p.Set("bad"); err == nil {
		t.Error("malformed param accepted")
	}
	if err := p.Set("N=abc"); err == nil {
		t.Error("non-numeric param accepted")
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestRunGenSkewedKernel(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-procs", "12", "-strategy", "skewed", "-param", "N=36", "-gen", "example3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "func RunTile(c0, c1 int") {
		t.Errorf("skewed kernel missing:\n%s", out)
	}
	if !strings.Contains(out, "ceilDiv") {
		t.Error("FM bounds helpers missing")
	}
}

func TestRunExplainPrintsDecisionTrace(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-procs", "16", "-explain", "-strategy", "rect", "example2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"=== decision trace ===",
		"partition.rect.candidate",
		"partition.rect.chosen",
		"analysis.class",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -explain output", want)
		}
	}
}

func TestRunTraceAndMetricsFiles(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.txt")
	var b strings.Builder
	err := run([]string{"-procs", "16", "-trace", trace, "-metrics", metrics, "example8"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	// With telemetry on, the run also simulates so the exports carry
	// miss counters.
	if !strings.Contains(b.String(), "=== simulation ===") {
		t.Errorf("telemetry run did not print the simulation section")
	}
	var events []map[string]any
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	text, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	// Non-.json metrics paths get the Prometheus text form.
	if !strings.Contains(string(text), "# TYPE") {
		t.Errorf("metrics text dump missing # TYPE lines:\n%s", text)
	}
	if !strings.Contains(string(text), "cold_misses") {
		t.Errorf("metrics dump missing simulation counters:\n%s", text)
	}
}

func TestRunFromStdin(t *testing.T) {
	src := "doall (i, 1, 16)\n A[i] = A[i] + 1\nenddoall\n"
	path := filepath.Join(t.TempDir(), "stdin.loop")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	orig := os.Stdin
	os.Stdin = f
	defer func() { os.Stdin = orig }()

	var fromStdin strings.Builder
	if err := run([]string{"-procs", "4", "-"}, &fromStdin); err != nil {
		t.Fatal(err)
	}
	var fromFile strings.Builder
	if err := run([]string{"-procs", "4", path}, &fromFile); err != nil {
		t.Fatal(err)
	}
	if fromStdin.String() != fromFile.String() {
		t.Errorf("stdin output differs from file output:\n%s\nvs\n%s", fromStdin.String(), fromFile.String())
	}
}

// TestServedPlanMatchesCLI is the serving golden test: for each
// nest/procs/strategy, the plan line the service returns must appear
// byte-for-byte in what this CLI prints.
func TestServedPlanMatchesCLI(t *testing.T) {
	svc := looppart.NewService(looppart.ServiceOptions{})
	for _, tc := range []struct {
		example, strategy string
		procs             int
	}{
		{"example2", "auto", 100},
		{"example3", "rect", 16},
		{"example8", "rect", 64},
		{"example8", "skewed", 16},
		{"example10", "auto", 16},
	} {
		resp, err := svc.Plan(context.Background(), looppart.PlanRequest{
			Source:   paperex.All[tc.example],
			Params:   map[string]int64{"N": 64, "T": 4},
			Procs:    tc.procs,
			Strategy: tc.strategy,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.example, tc.strategy, err)
		}
		var cli strings.Builder
		args := []string{"-procs", strconv.Itoa(tc.procs), "-strategy", tc.strategy, tc.example}
		if err := run(args, &cli); err != nil {
			t.Fatalf("%s/%s: %v", tc.example, tc.strategy, err)
		}
		if !strings.Contains(cli.String(), resp.Result.Rendered) {
			t.Errorf("%s/%s: served plan %q not found in CLI output:\n%s",
				tc.example, tc.strategy, resp.Result.Rendered, cli.String())
		}
	}
}
