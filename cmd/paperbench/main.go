// Command paperbench regenerates every experiment of the reproduction —
// the paper's worked examples, figures, and comparative claims — and
// prints the measured-vs-paper table recorded in EXPERIMENTS.md.
//
// Usage:
//
//	paperbench [flags] [-id EID]
//
// With -id, only the named experiment (e.g. E8) runs; an unknown id lists
// the known experiments and exits non-zero. `-id -` reads a whitespace-
// separated list of experiment ids from stdin, so a selection pipes in:
//
//	echo E1 E8 E21 | paperbench -id -
//
// Flags:
//
//	-id EID        run only this experiment (- = read ids from stdin)
//	-trace FILE    write a Chrome trace-event JSON file of the run
//	-metrics FILE  write a metrics dump (.json = JSON, else text)
//	-pprof ADDR    serve net/http/pprof on ADDR (e.g. :6060)
//
// With -trace or -metrics, each experiment also prints its per-experiment
// telemetry snapshot size (counters recorded while it ran).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"looppart/internal/cliflag"
	"looppart/internal/experiments"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
	}
	os.Exit(code)
}

func run(args []string, in io.Reader, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	id := fs.String("id", "", "run only this experiment (E1..E21), or - to read ids from stdin")
	var obs cliflag.Obs
	obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	reg, err := obs.Setup()
	if err != nil {
		return 2, err
	}

	var ids []string
	switch {
	case *id == "-":
		data, err := io.ReadAll(in)
		if err != nil {
			return 2, err
		}
		ids = strings.Fields(string(data))
		if len(ids) == 0 {
			return 2, fmt.Errorf("-id -: no experiment ids on stdin")
		}
	case *id != "":
		ids = []string{*id}
	}
	results, err := experiments.RunAll(ids, reg)
	if err != nil {
		// Unknown experiment id: the error lists the known IDs.
		return 2, err
	}
	fmt.Fprint(out, experiments.FormatTable(results))
	if reg != nil {
		for _, r := range results {
			if r.Telemetry != nil {
				fmt.Fprintf(out, "%s telemetry: %d counters, %d gauges, %d histograms\n",
					r.ID, len(r.Telemetry.Counters), len(r.Telemetry.Gauges), len(r.Telemetry.Histograms))
			}
		}
	}
	if err := obs.Flush(reg); err != nil {
		return 1, err
	}
	for _, r := range results {
		if !r.Pass {
			return 1, nil
		}
	}
	return 0, nil
}
