// Command paperbench regenerates every experiment of the reproduction —
// the paper's worked examples, figures, and comparative claims — and
// prints the measured-vs-paper table recorded in EXPERIMENTS.md.
//
// Usage:
//
//	paperbench [-id EID]
//
// With -id, only the named experiment (e.g. E8) runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"looppart/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run only this experiment (E1..E14)")
	flag.Parse()

	var results []experiments.Result
	if *id == "" {
		results = experiments.All()
	} else {
		all := experiments.All()
		for _, r := range all {
			if r.ID == *id {
				results = append(results, r)
			}
		}
		if len(results) == 0 {
			fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q\n", *id)
			os.Exit(2)
		}
	}
	fmt.Print(experiments.FormatTable(results))
	for _, r := range results {
		if !r.Pass {
			os.Exit(1)
		}
	}
}
