package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"-id", "E1"}, nil, &b)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if !strings.Contains(b.String(), "E1") {
		t.Errorf("table missing E1:\n%s", b.String())
	}
}

func TestRunUnknownIDListsExperiments(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"-id", "E99"}, nil, &b)
	if code == 0 {
		t.Fatalf("unknown -id accepted (exit 0)")
	}
	if err == nil {
		t.Fatal("unknown -id produced no error")
	}
	for _, want := range []string{"E99", "E1", "E21"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestRunWithTelemetryExports(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	var b strings.Builder
	code, err := run([]string{"-id", "E8", "-trace", trace, "-metrics", metrics}, nil, &b)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if !strings.Contains(b.String(), "telemetry:") {
		t.Errorf("per-experiment telemetry summary missing:\n%s", b.String())
	}
	for _, path := range []string{trace, metrics} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestRunIDsFromStdin(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"-id", "-"}, strings.NewReader("E1 E8\nE21\n"), &b)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	out := b.String()
	for _, want := range []string{"E1", "E8", "E21"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, "E2 ") {
		t.Errorf("unselected experiment ran:\n%s", out)
	}
}

func TestRunIDsFromStdinEmpty(t *testing.T) {
	var b strings.Builder
	code, err := run([]string{"-id", "-"}, strings.NewReader("  \n"), &b)
	if code == 0 || err == nil {
		t.Fatalf("empty stdin accepted (code %d, err %v)", code, err)
	}
}
