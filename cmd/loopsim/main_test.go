package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExample2Table(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-procs", "100", "example2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"strategy", "rows", "columns", "blocks", "comm-free"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in table:\n%s", want, out)
		}
	}
	// The paper's ordering: columns (204) beats blocks (240).
	if !strings.Contains(out, "204.0") || !strings.Contains(out, "240.0") {
		t.Errorf("expected 204.0 and 240.0 in:\n%s", out)
	}
}

func TestRunMeshComparison(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-procs", "8", "-param", "N=16", "-mesh", "example8"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "aligned") || !strings.Contains(out, "hashed") {
		t.Errorf("mesh table missing:\n%s", out)
	}
}

func TestRunFiniteCache(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-procs", "4", "-cache", "32", "-param", "N=16", "example3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rect") {
		t.Error("table missing")
	}
}

// TestRunCommSets: -commsets prints the rect plan's per-tile
// send/receive table and the message-passing run's word accounting
// (which run itself enforces measured == predicted).
func TestRunCommSets(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-procs", "4", "-param", "N=24", "-param", "T=2", "-commsets", "fig9stencil"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"communication sets (rect plan):",
		"proc", "sent", "recv",
		"total words/epoch:",
		"msgexec: 2 epochs, predicted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{{}, {"no-such-file"}} {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestInfeasibleStrategyReportedInline(t *testing.T) {
	// Rows with more processors than rows: the table should carry the
	// error instead of aborting.
	var b strings.Builder
	if err := run([]string{"-procs", "100", "-param", "N=8", "example3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "—") {
		t.Errorf("inline error marker missing:\n%s", b.String())
	}
}

func TestRunTelemetryExports(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.json")
	var b strings.Builder
	err := run([]string{"-procs", "16", "-trace", trace, "-metrics", metrics, "example2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	data, err = os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics is not a JSON snapshot: %v", err)
	}
	// Each of the six strategies simulates under its own prefix; the two
	// always-feasible baselines must both be present and distinct.
	for _, name := range []string{"sim.rows.cold_misses", "sim.columns.cold_misses"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s missing from metrics dump", name)
		}
	}
}

func TestRunFromStdin(t *testing.T) {
	src := "doall (i, 1, 16)\n A[i] = A[i] + 1\nenddoall\n"
	path := filepath.Join(t.TempDir(), "stdin.loop")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	orig := os.Stdin
	os.Stdin = f
	defer func() { os.Stdin = orig }()

	var b strings.Builder
	if err := run([]string{"-procs", "4", "-"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "strategy") {
		t.Errorf("table missing from stdin run:\n%s", b.String())
	}
}
