// Command loopsim simulates a loop-nest program on the cache-coherent
// multiprocessor model under several partitioning strategies and prints a
// comparison table of misses, coherence events, and network traffic.
//
// Usage:
//
//	loopsim [flags] <file.loop | example-name>
//
// Flags:
//
//	-procs P       number of processors (default 16)
//	-param N=V     bind a loop-bound parameter (repeatable)
//	-cache LINES   finite cache size in lines; 0 = infinite (default 0)
//	-mesh          also run the distributed-memory mesh comparison
//	                (aligned vs hashed data placement)
//	-commsets      print each strategy's exact per-tile send/receive
//	               table and run the plan under the message-passing
//	               executor (measured words must equal the prediction;
//	               a mismatch is an error)
//	-trace FILE    write a Chrome trace-event JSON file
//	-metrics FILE  write a metrics dump (.json = JSON, else text)
//	-pprof ADDR    serve net/http/pprof on ADDR (e.g. :6060)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"looppart"
	"looppart/internal/cliflag"
	"looppart/internal/commsets"
	"looppart/internal/paperex"
	"looppart/internal/telemetry"
)

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprint(map[string]int64(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p[name] = v
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loopsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loopsim", flag.ContinueOnError)
	procs := fs.Int("procs", 16, "number of processors")
	cache := fs.Int("cache", 0, "cache lines per processor (0 = infinite)")
	mesh := fs.Bool("mesh", false, "run the mesh placement comparison")
	commsetsFlag := fs.Bool("commsets", false, "print per-tile communication sets and run the message-passing executor")
	var obs cliflag.Obs
	obs.Register(fs)
	params := paramFlags{"N": 64, "T": 4}
	fs.Var(params, "param", "loop-bound parameter NAME=VALUE (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one program file, example name, or - for stdin")
	}
	reg, err := obs.Setup()
	if err != nil {
		return err
	}
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)
	var src string
	if arg := fs.Arg(0); arg == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		src = string(data)
	} else if builtin, ok := paperex.All[strings.ToLower(arg)]; ok {
		src = builtin
	} else {
		data, err := os.ReadFile(arg)
		if err != nil {
			return err
		}
		src = string(data)
	}
	prog, err := looppart.Parse(src, params)
	if err != nil {
		return err
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\ttile\tmisses/proc\tcold\tcoherence\tinval\ttraffic\tshared\timbalance\tcost")
	for _, s := range []looppart.Strategy{
		looppart.Rows, looppart.Columns, looppart.Blocks,
		looppart.Rect, looppart.Skewed, looppart.CommFree,
	} {
		plan, err := prog.Partition(*procs, s)
		if err != nil {
			fmt.Fprintf(w, "%s\t—\t%v\n", s, err)
			continue
		}
		m, err := plan.Simulate(looppart.SimOptions{CacheLines: *cache})
		if err != nil {
			return err
		}
		shape := "slabs"
		if plan.Tile != nil {
			shape = plan.Tile.String()
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%d\t%d\t%d\t%d\t%d\t%.2f\t%.0f\n",
			s, shape, m.MissesPerProc(), m.ColdMisses, m.CoherenceMisses,
			m.Invalidations, m.NetworkTraffic, m.SharedData, plan.LoadImbalance(), m.Cost)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if *commsetsFlag {
		for _, s := range []looppart.Strategy{looppart.Rect, looppart.CommFree} {
			plan, err := prog.Partition(*procs, s)
			if err != nil {
				continue
			}
			comm, err := plan.CommSets(commsets.Options{Materialize: true})
			if err != nil {
				fmt.Fprintf(out, "\ncommunication sets (%s): %v\n", s, err)
				continue
			}
			fmt.Fprintf(out, "\ncommunication sets (%s plan):\n%s", s, comm.Table())
			rep, err := plan.ExecuteMessagePassing()
			if err != nil {
				return fmt.Errorf("message-passing run (%s): %w", s, err)
			}
			line := fmt.Sprintf("msgexec: %d epochs, predicted %d words, moved %d",
				rep.Epochs, rep.PredictedWords, rep.WordsMoved)
			if rep.ValuesChecked {
				line += ", values match sequential"
			}
			fmt.Fprintln(out, line)
		}
	}

	if *mesh {
		plan, err := prog.Partition(*procs, looppart.Rect)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\nmesh placement comparison (rect plan):")
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "placement\tlocal misses\tremote misses\thop traffic\tcost")
		for _, aligned := range []bool{true, false} {
			m, err := plan.SimulateMesh(looppart.MeshOptions{Aligned: aligned, CacheLines: *cache})
			if err != nil {
				return err
			}
			name := "hashed"
			if aligned {
				name = "aligned"
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.0f\n",
				name, m.LocalMisses, m.RemoteMisses, m.HopTraffic, m.Cost)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return obs.Flush(reg)
}
