package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"looppart"
	"looppart/internal/cluster"
	"looppart/internal/server"
	"looppart/internal/telemetry"
)

// replica is one in-process fleet member of the cluster loadgen.
type replica struct {
	member string
	svc    *looppart.Service
	client *cluster.Client
	hs     *http.Server
	ln     net.Listener
}

// bootFleet starts n replicas on ephemeral ports, each serving the full
// API with a peer-fill client over the same ring — the in-process
// equivalent of n looppartd processes booted with -peers.
func bootFleet(n, hotKeys int) ([]*replica, error) {
	reps := make([]*replica, n)
	members := make([]string, n)
	for i := range reps {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, r := range reps[:i] {
				r.ln.Close()
			}
			return nil, err
		}
		reps[i] = &replica{ln: ln, member: cluster.MemberName(ln.Addr().String())}
		members[i] = reps[i].member
	}
	for _, r := range reps {
		r.client = cluster.New(cluster.Options{Self: r.member, Members: members})
		r.svc = looppart.NewService(looppart.ServiceOptions{
			PeerFill: r.client,
			HotKeys:  hotKeys,
		})
		srv := server.New(server.Config{
			Service:  r.svc,
			Registry: telemetry.New(),
			Cluster:  r.client,
		})
		r.hs = &http.Server{Handler: srv.Handler()}
		go r.hs.Serve(r.ln)
	}
	return reps, nil
}

// runClusterLoadgen boots cfg.cluster in-process replicas wired into one
// consistent-hash ring and drives cfg.keys distinct plan keys across all
// of them, rotating each key over every replica. It verifies the
// clustering contract as it goes: every response body for a key must be
// byte-identical regardless of which replica served it, and the
// fleet-wide search count should approach the distinct-key count.
func runClusterLoadgen(ctx context.Context, cfg loadgenConfig, out io.Writer) error {
	if cfg.n < 1 || cfg.c < 1 || cfg.keys < 1 {
		return fmt.Errorf("cluster loadgen requires -n, -c, and -keys >= 1")
	}
	src, err := loadSource(cfg.nestArg)
	if err != nil {
		return err
	}
	// Distinct keys by distinct processor counts: procs is part of the
	// canonical key for any nest, so this works for file input as well as
	// the built-in examples.
	bodies := make([][]byte, cfg.keys)
	for i := range bodies {
		req := looppart.PlanRequest{Source: src, Params: cfg.params, Procs: cfg.procs + i, Strategy: cfg.strategy}
		if bodies[i], err = json.Marshal(req); err != nil {
			return err
		}
	}

	reps, err := bootFleet(cfg.cluster, cfg.hotKeys)
	if err != nil {
		return err
	}
	defer func() {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, r := range reps {
			r.hs.Shutdown(shCtx)
		}
	}()
	fmt.Fprintf(out, "loadgen: fleet of %d replicas, %d distinct keys\n", len(reps), cfg.keys)

	var (
		next      atomic.Int64
		okCount   atomic.Int64
		shed      atomic.Int64
		failed    atomic.Int64
		firstErr  atomic.Pointer[string]
		perOK     = make([]atomic.Int64, len(reps))
		perHits   = make([]atomic.Int64, len(reps))
		canonMu   sync.Mutex
		canonical = make([][]byte, cfg.keys)
		client    = &http.Client{Timeout: 60 * time.Second}
	)
	recordErr := func(msg string) {
		failed.Add(1)
		firstErr.CompareAndSwap(nil, &msg)
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(cfg.c)
	for w := 0; w < cfg.c; w++ {
		go func() {
			defer wg.Done()
			for {
				seq := int(next.Add(1)) - 1
				if seq >= cfg.n || ctx.Err() != nil {
					return
				}
				// Walk each key across every replica: consecutive requests
				// for a key land on different members, exercising owner
				// serves, peer fills, and post-fill local hits alike.
				k := seq % cfg.keys
				r := (seq / cfg.keys) % len(reps)
				resp, err := client.Post(reps[r].member+"/v1/plan", "application/json", bytes.NewReader(bodies[k]))
				if err != nil {
					recordErr(err.Error())
					continue
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					recordErr(err.Error())
					continue
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					// Admission control shedding under the worker burst is
					// expected behavior, not a fleet-invariant violation.
					shed.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					recordErr(fmt.Sprintf("replica %d status %d: %s", r, resp.StatusCode, raw))
					continue
				}
				okCount.Add(1)
				perOK[r].Add(1)
				if st := resp.Header.Get("X-Plancache"); st == "hit" || st == "dedup" || st == "hot" || st == "peer" {
					perHits[r].Add(1)
				}
				canonMu.Lock()
				if canonical[k] == nil {
					canonical[k] = raw
				} else if !bytes.Equal(canonical[k], raw) {
					canonMu.Unlock()
					recordErr(fmt.Sprintf("key %d: replica %d served different bytes than first response", k, r))
					continue
				}
				canonMu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	done := okCount.Load() + shed.Load() + failed.Load()
	fmt.Fprintf(out, "loadgen: %d requests in %v (%.0f/s aggregate), %d ok, %d shed, %d failed\n",
		done, wall.Round(time.Millisecond), float64(done)/wall.Seconds(), okCount.Load(), shed.Load(), failed.Load())
	var fleetSearches, fleetPeerFills, fleetHot int64
	for i, r := range reps {
		st := r.svc.Stats()
		fleetSearches += st.Searches
		fleetPeerFills += st.PeerHits
		if st.Hot != nil {
			fleetHot += st.HotHits
		}
		ok := perOK[i].Load()
		rate := 0.0
		if ok > 0 {
			rate = 100 * float64(perHits[i].Load()) / float64(ok)
		}
		fmt.Fprintf(out, "loadgen: replica %d (%s): %d ok, %.0f%% hits, %d searches, %d peer fills, ring share %.0f%%\n",
			i, r.member, ok, rate, st.Searches, st.PeerHits, 100*r.client.Stats().SelfFraction)
	}
	fmt.Fprintf(out, "loadgen: fleet searched %d times for %d distinct keys (%d peer fills, %d hot hits)\n",
		fleetSearches, cfg.keys, fleetPeerFills, fleetHot)
	if failed.Load() > 0 {
		msg := "see above"
		if m := firstErr.Load(); m != nil {
			msg = *m
		}
		return fmt.Errorf("cluster loadgen: %d requests failed (first: %s)", failed.Load(), msg)
	}
	fmt.Fprintf(out, "loadgen: all responses byte-identical per key across replicas\n")
	if errors := ctx.Err(); errors != nil && errors != context.Canceled {
		return errors
	}
	return nil
}
