// Command looppartd is the partition-planning daemon: a long-running HTTP
// service that answers plan requests through a canonicalized plan cache
// with singleflight deduplication and admission control, so a fleet of
// consumers pays one search per distinct (nest, procs, strategy) instead
// of one per invocation.
//
// Serve mode (default):
//
//	looppartd -addr 127.0.0.1:8077
//
//	-addr ADDR         listen address (default 127.0.0.1:8077)
//	-portfile FILE     write the bound address to FILE once listening
//	-max-inflight N    planning requests served concurrently before
//	                   shedding with 429 (default 4×GOMAXPROCS)
//	-timeout D         per-request planning deadline (default 10s)
//	-max-body N        request body limit in bytes (default 1 MiB)
//	-cache-mb N        plan-cache budget in MiB (default 64)
//	-store DIR         persistent tuned-plan store: warm-starts the cache
//	                   at boot and absorbs every served plan
//	-calibrate MODE    cost constants for autotuning: model (paper
//	                   defaults) or sim (fit by microbenchmark)
//	-autotune K        serve measured tournament winners over the top-K
//	                   analytic candidates (0 = pure analytic planning)
//	-selfcheck         verify every served plan before returning it
//	                   (equivalent to ?verify=1 on every request)
//	-strategies LIST   comma-separated strategy names this daemon will
//	                   plan (e.g. rect,skew,lowerbound; "skew" is accepted
//	                   for "skewed"); requests naming any other strategy
//	                   are rejected. Empty (default) enables all
//	-peers LIST        cluster mode: comma-separated replica base URLs
//	                   (host:port or http://host:port), or @FILE to read
//	                   a peer's portfile (polled until written, so a
//	                   fleet on ephemeral ports can boot in any order).
//	                   Keys are consistent-hashed across the fleet; a
//	                   local miss asks the key-owner replica's
//	                   /v1/peer/plan before searching itself
//	-advertise URL     this replica's member name in the ring (default:
//	                   the bound address); replicas must name each other
//	                   consistently for their rings to agree
//	-ring-vnodes N     virtual nodes per ring member (default 64)
//	-peer-timeout D    peer-fill deadline including the hedge (default 5s)
//	-peer-hedge D      duplicate a slow peer fill after D (default 250ms;
//	                   negative disables hedging)
//	-hot-keys N        pin the N hottest plans in a lock-free tier above
//	                   the LRU (0 = off); served with X-Plancache: hot
//	-quota RATE[:BURST] per-tenant token bucket on the planning routes:
//	                   RATE requests/second with bursts of BURST (default
//	                   ceil(RATE)); tenants are keyed by the X-Tenant
//	                   header and shed with 429 + Retry-After
//	-slo SPEC          per-route latency objective ROUTE=LATENCY[@TARGET]
//	                   (e.g. /v1/plan=250ms@0.99; repeatable); breaches
//	                   surface as /metrics burn-rate gauges + exemplars
//	-flightrec N       flight-recorder ring size: the last N request
//	                   records behind GET /debug/flightrec (default 256)
//	-flightrec-dir DIR snapshot 5xx / SLO-breach records into DIR
//	-reqlog DEST       structured JSON request log (one line per request,
//	                   keyed by trace ID): stderr (default), stdout, a
//	                   file path, or empty to disable
//	-span-cap N        retained telemetry spans (default 4096)
//	-event-cap N       retained decision events (default 16384)
//	-trace FILE        write a Chrome trace on shutdown
//	-metrics FILE      write a metrics dump on shutdown
//	-pprof ADDR        serve net/http/pprof on ADDR
//
// The daemon exits cleanly on SIGINT/SIGTERM, draining in-flight plans.
// Live metrics are always available at GET /metrics.
//
// Load-generator mode, for driving the serving benchmarks against a
// running daemon:
//
//	looppartd -loadgen -url http://127.0.0.1:8077 -n 1000 -c 8 example8
//
//	-n N       total requests (default 200)
//	-c N       concurrent workers (default 4)
//	-batch K   send batches of K items instead of single requests
//	-procs P, -strategy S, -param N=V   the planning request
//
// The loadgen reports throughput, cache-hit rate, latency percentiles
// (p50/p95/p99), and the trace IDs of the slowest requests (join them
// against the daemon's /debug/flightrec); it exits non-zero if any
// request failed.
//
// Cluster load-generator mode boots its own fleet of N in-process
// replicas wired into one consistent-hash ring and drives K distinct
// keys across all of them:
//
//	looppartd -loadgen -cluster 3 -keys 8 -n 3000 -c 16 example8
//
// It reports aggregate throughput, per-replica hit rates, the
// fleet-wide search count (which should approach K — each distinct key
// searched once, wherever it landed), and fails if any key's response
// body differs between replicas.
//
// The nest argument is a built-in example name, a file, or - for stdin.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"looppart"
	"looppart/internal/autotune"
	"looppart/internal/cliflag"
	"looppart/internal/cluster"
	"looppart/internal/obs"
	"looppart/internal/paperex"
	"looppart/internal/server"
	"looppart/internal/telemetry"
)

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprint(map[string]int64(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p[name] = v
	return nil
}

// sloFlags accumulates repeated -slo objectives.
type sloFlags []obs.Objective

func (f *sloFlags) String() string { return fmt.Sprint([]obs.Objective(*f)) }

func (f *sloFlags) Set(s string) error {
	o, err := obs.ParseObjective(s)
	if err != nil {
		return err
	}
	*f = append(*f, o)
	return nil
}

// openRequestLog resolves the -reqlog destination.
func openRequestLog(dest string) (io.Writer, io.Closer, error) {
	switch dest {
	case "":
		return nil, nil, nil
	case "stderr":
		return os.Stderr, nil, nil
	case "stdout":
		return os.Stdout, nil, nil
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		return f, f, nil
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "looppartd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("looppartd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	portfile := fs.String("portfile", "", "write the bound address to this file once listening")
	maxInflight := fs.Int("max-inflight", 0, "concurrent planning requests before shedding (0 = 4×GOMAXPROCS)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request planning deadline")
	maxBody := fs.Int64("max-body", 1<<20, "request body limit in bytes")
	cacheMB := fs.Int64("cache-mb", 64, "plan-cache budget in MiB")
	storeDir := fs.String("store", "", "persistent tuned-plan store directory (empty = memory only)")
	calibrate := fs.String("calibrate", "model", "cost constants: model (paper defaults) or sim (fit by microbenchmark)")
	autotuneK := fs.Int("autotune", 0, "serve tournament winners over the top-K analytic candidates (0 = analytic)")
	selfCheck := fs.Bool("selfcheck", false, "verify every served plan before returning it (500 + report on failure)")
	commSets := fs.Bool("commsets", false, "attach the exact communication-set summary to every served plan")
	strategiesList := fs.String("strategies", "", "comma-separated strategy names to enable (empty = all)")
	peers := fs.String("peers", "", "cluster members: comma-separated base URLs or @portfile specs")
	advertise := fs.String("advertise", "", "this replica's member name in the ring (default: the bound address)")
	ringVNodes := fs.Int("ring-vnodes", cluster.DefaultVNodes, "virtual nodes per ring member")
	peerTimeout := fs.Duration("peer-timeout", cluster.DefaultFillTimeout, "peer-fill deadline including the hedge")
	peerHedge := fs.Duration("peer-hedge", cluster.DefaultHedgeDelay, "duplicate a slow peer fill after this delay (negative = no hedging)")
	hotKeys := fs.Int("hot-keys", 0, "pin the N hottest plans in a lock-free tier above the LRU (0 = off)")
	quotaSpec := fs.String("quota", "", "per-tenant rate limit RATE[:BURST] requests/second (empty = off)")
	spanCap := fs.Int("span-cap", 4096, "retained telemetry spans (0 = unbounded)")
	eventCap := fs.Int("event-cap", 16384, "retained decision events (0 = unbounded)")
	var sloSpecs sloFlags
	fs.Var(&sloSpecs, "slo", "latency objective ROUTE=LATENCY[@TARGET], e.g. /v1/plan=250ms@0.99 (repeatable)")
	flightrecN := fs.Int("flightrec", obs.DefaultRecorderSize, "flight-recorder ring size (last N requests)")
	flightrecDir := fs.String("flightrec-dir", "", "auto-snapshot 5xx / SLO-breach flight records into this directory")
	reqlog := fs.String("reqlog", "stderr", "request log destination: stderr, stdout, a file path, or empty to disable")
	loadgen := fs.Bool("loadgen", false, "drive load at a running daemon instead of serving")
	url := fs.String("url", "", "loadgen: base URL of the daemon")
	n := fs.Int("n", 200, "loadgen: total requests")
	c := fs.Int("c", 4, "loadgen: concurrent workers")
	batch := fs.Int("batch", 0, "loadgen: items per batch request (0 = single requests)")
	clusterN := fs.Int("cluster", 0, "loadgen: boot this many in-process replicas and drive them as a fleet")
	keysN := fs.Int("keys", 4, "loadgen: distinct plan keys to spread across the fleet (cluster mode)")
	procs := fs.Int("procs", 16, "loadgen: processors in the plan request")
	strategy := fs.String("strategy", "rect", "loadgen: strategy in the plan request")
	params := paramFlags{"N": 64, "T": 4}
	fs.Var(params, "param", "loadgen: loop-bound parameter NAME=VALUE (repeatable)")
	var obsFlags cliflag.Obs
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *loadgen {
		cfg := loadgenConfig{
			url: *url, n: *n, c: *c, batch: *batch,
			procs: *procs, strategy: *strategy, params: params,
			nestArg: fs.Args(),
			cluster: *clusterN, keys: *keysN, hotKeys: *hotKeys,
		}
		if *clusterN > 0 {
			return runClusterLoadgen(ctx, cfg, out)
		}
		return runLoadgen(ctx, cfg, out)
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve mode takes no arguments (use -loadgen to drive load)")
	}

	reg, err := obsFlags.Setup()
	if err != nil {
		return err
	}
	if reg == nil {
		// The daemon always runs with telemetry on: /metrics serves it.
		reg = telemetry.New()
	}
	reg.SetRecordCaps(*spanCap, *eventCap)
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	// Listen (and write the portfile) before anything slow — calibration,
	// store warm-load, peer resolution: a fleet wired by @portfile specs
	// needs every replica's portfile on disk before any of them can
	// resolve its peers, whatever order they boot in.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	bound := ln.Addr().String()
	if *portfile != "" {
		if err := os.WriteFile(*portfile, []byte(bound), 0o644); err != nil {
			return err
		}
	}

	var fp autotune.Fingerprint
	switch *calibrate {
	case "model", "":
		fp = autotune.ModelFingerprint()
	case "sim":
		if fp, err = autotune.Calibrate(autotune.CalibrateOptions{}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -calibrate mode %q (want model or sim)", *calibrate)
	}
	svcOpts := looppart.ServiceOptions{
		CacheBytes:  *cacheMB << 20,
		AutotuneK:   *autotuneK,
		Fingerprint: fp,
		CommSets:    *commSets,
	}
	if *strategiesList != "" {
		if svcOpts.Strategies, err = parseStrategies(*strategiesList); err != nil {
			return err
		}
	}
	if *storeDir != "" {
		if svcOpts.Store, err = autotune.OpenStore(*storeDir, fp); err != nil {
			return err
		}
	}
	svcOpts.HotKeys = *hotKeys
	var clusterClient *cluster.Client
	if *peers != "" {
		self := cluster.MemberName(*advertise)
		if self == "" {
			self = cluster.MemberName(bound)
		}
		members, err := resolvePeers(ctx, *peers)
		if err != nil {
			return err
		}
		// Self joins the ring too; resolvePeers may also have returned it
		// (scripts pass every replica the same member list) — the ring
		// dedups.
		members = append(members, self)
		clusterClient = cluster.New(cluster.Options{
			Self:        self,
			Members:     members,
			VNodes:      *ringVNodes,
			FillTimeout: *peerTimeout,
			HedgeDelay:  *peerHedge,
		})
		svcOpts.PeerFill = clusterClient
	}
	quotas, err := parseQuota(*quotaSpec)
	if err != nil {
		return err
	}
	svc := looppart.NewService(svcOpts)
	if svcOpts.Store != nil {
		st := svc.Stats()
		fmt.Fprintf(out, "looppartd: store %s (%s): %d plans warm-loaded\n",
			*storeDir, fp.ID(), st.WarmLoaded)
	}
	if *autotuneK > 0 {
		fmt.Fprintf(out, "looppartd: autotune on: top-%d tournaments under %s\n", *autotuneK, fp.ID())
	}
	if *selfCheck {
		fmt.Fprintln(out, "looppartd: self-check on: every served plan is re-verified")
	}
	if clusterClient != nil {
		cst := clusterClient.Stats()
		fmt.Fprintf(out, "looppartd: cluster of %d members (%d vnodes each), self %s owns %.1f%% of the ring\n",
			cst.Members, cst.VNodes, cst.Self, 100*cst.SelfFraction)
	}
	if *hotKeys > 0 {
		fmt.Fprintf(out, "looppartd: hot tier pins the top %d plans\n", *hotKeys)
	}
	if len(svcOpts.Strategies) > 0 {
		fmt.Fprintf(out, "looppartd: strategies enabled: %s\n", strings.Join(svcOpts.Strategies, ", "))
	}
	if quotas != nil {
		qs := quotas.Stats()
		fmt.Fprintf(out, "looppartd: per-tenant quota %.4g req/s (burst %.4g)\n", qs.Rate, qs.Burst)
	}
	recorder := obs.NewRecorder(*flightrecN)
	if *flightrecDir != "" {
		if err := recorder.SnapshotTo(*flightrecDir); err != nil {
			return err
		}
		fmt.Fprintf(out, "looppartd: flight-record snapshots to %s\n", *flightrecDir)
	}
	slo := obs.NewSLOTracker(sloSpecs...)
	for _, o := range sloSpecs {
		fmt.Fprintf(out, "looppartd: SLO %s: %.4g%% under %v\n", o.Route, 100*o.Target, o.Latency)
	}
	logw, logc, err := openRequestLog(*reqlog)
	if err != nil {
		return err
	}
	if logc != nil {
		defer logc.Close()
	}
	var logger *slog.Logger
	if logw != nil {
		logger = obs.NewLogger(logw)
	}
	srv := server.New(server.Config{
		Service:      svc,
		Registry:     reg,
		MaxInflight:  *maxInflight,
		PlanTimeout:  *timeout,
		MaxBodyBytes: *maxBody,
		SelfCheck:    *selfCheck,
		Logger:       logger,
		Recorder:     recorder,
		SLO:          slo,
		Cluster:      clusterClient,
		Quotas:       quotas,
	})
	fmt.Fprintf(out, "looppartd: serving on http://%s\n", bound)

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "looppartd: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		return err
	}
	st := svc.Stats()
	if clusterClient != nil {
		fmt.Fprintf(out, "looppartd: served %d requests (%d searches, %d cache hits, %d peer fills), bye\n",
			st.Requests, st.Searches, st.CacheHits, st.PeerHits)
	} else {
		fmt.Fprintf(out, "looppartd: served %d requests (%d searches, %d cache hits), bye\n",
			st.Requests, st.Searches, st.CacheHits)
	}
	return obsFlags.Flush(reg)
}

// resolvePeers expands the -peers list into member names. A spec is a
// replica base URL, or @FILE naming a portfile another replica writes
// once listening — the boot-order-free way to wire a fleet on ephemeral
// ports: every replica lists every portfile (its own included; the ring
// dedups) and polls until they all appear.
func resolvePeers(ctx context.Context, specs string) ([]string, error) {
	var members []string
	deadline := time.Now().Add(10 * time.Second)
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		if !strings.HasPrefix(spec, "@") {
			members = append(members, cluster.MemberName(spec))
			continue
		}
		file := strings.TrimPrefix(spec, "@")
		for {
			data, err := os.ReadFile(file)
			if err == nil && len(bytes.TrimSpace(data)) > 0 {
				members = append(members, cluster.MemberName(string(bytes.TrimSpace(data))))
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("peer portfile %s not written within 10s", file)
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(25 * time.Millisecond):
			}
		}
	}
	return members, nil
}

// parseStrategies expands the -strategies list into validated strategy
// names. "skew" is accepted as the common short spelling of "skewed";
// unknown names fail fast at boot rather than 4xx-ing every request.
func parseStrategies(list string) ([]string, error) {
	var names []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "skew" {
			name = "skewed"
		}
		if _, ok := looppart.ParseStrategy(name); !ok {
			return nil, fmt.Errorf("unknown strategy %q in -strategies", name)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-strategies lists no strategy names")
	}
	return names, nil
}

// parseQuota parses the -quota spec RATE[:BURST] into a limiter (nil
// when the spec is empty — quotas off).
func parseQuota(spec string) (*cluster.Quotas, error) {
	if spec == "" {
		return nil, nil
	}
	rateS, burstS, _ := strings.Cut(spec, ":")
	rate, err := strconv.ParseFloat(rateS, 64)
	if err != nil || rate <= 0 {
		return nil, fmt.Errorf("bad -quota rate %q (want RATE[:BURST], RATE > 0)", spec)
	}
	var burst float64
	if burstS != "" {
		if burst, err = strconv.ParseFloat(burstS, 64); err != nil || burst < 1 {
			return nil, fmt.Errorf("bad -quota burst %q (want >= 1)", spec)
		}
	}
	return cluster.NewQuotas(rate, burst), nil
}

// loadgenConfig parameterizes one load-generation run.
type loadgenConfig struct {
	url      string
	n, c     int
	batch    int
	procs    int
	strategy string
	params   map[string]int64
	nestArg  []string
	// cluster mode: boot this many in-process replicas and spread keys
	// distinct keys across them (runClusterLoadgen).
	cluster int
	keys    int
	hotKeys int
}

// loadSource resolves the loadgen nest argument: a built-in example name,
// a file path, or - for stdin (default example8).
func loadSource(args []string) (string, error) {
	if len(args) == 0 {
		return paperex.Example8, nil
	}
	if len(args) != 1 {
		return "", fmt.Errorf("loadgen takes one nest argument, got %d", len(args))
	}
	arg := args[0]
	if arg == "-" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	if src, ok := paperex.All[strings.ToLower(arg)]; ok {
		return src, nil
	}
	data, err := os.ReadFile(arg)
	return string(data), err
}

func runLoadgen(ctx context.Context, cfg loadgenConfig, out io.Writer) error {
	if cfg.url == "" {
		return fmt.Errorf("loadgen requires -url (the daemon's base address)")
	}
	if cfg.n < 1 || cfg.c < 1 {
		return fmt.Errorf("loadgen requires -n >= 1 and -c >= 1")
	}
	src, err := loadSource(cfg.nestArg)
	if err != nil {
		return err
	}
	req := looppart.PlanRequest{Source: src, Params: cfg.params, Procs: cfg.procs, Strategy: cfg.strategy}
	single, err := json.Marshal(req)
	if err != nil {
		return err
	}
	endpoint := cfg.url + "/v1/plan"
	body := single
	if cfg.batch > 0 {
		reqs := make([]looppart.PlanRequest, cfg.batch)
		for i := range reqs {
			reqs[i] = req
		}
		wrapped := struct {
			Requests []looppart.PlanRequest `json:"requests"`
		}{reqs}
		if body, err = json.Marshal(wrapped); err != nil {
			return err
		}
		endpoint = cfg.url + "/v1/plan/batch"
	}

	var (
		next     atomic.Int64
		okCount  atomic.Int64
		shed     atomic.Int64
		failed   atomic.Int64
		hits     atomic.Int64
		totalNs  atomic.Int64
		firstErr atomic.Pointer[string]
		client   = &http.Client{Timeout: 60 * time.Second}
	)
	recordErr := func(msg string) {
		failed.Add(1)
		firstErr.CompareAndSwap(nil, &msg)
	}
	// Per-request samples for the percentile report and the trace IDs of
	// the slowest requests (the daemon echoes X-Trace-Id, so a slow
	// outlier here maps directly to /debug/flightrec?trace=<id>).
	type sample struct {
		lat   time.Duration
		trace string
	}
	var (
		sampleMu sync.Mutex
		samples  []sample
	)

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(cfg.c)
	for w := 0; w < cfg.c; w++ {
		go func() {
			defer wg.Done()
			for {
				if int(next.Add(1)) > cfg.n || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
				if err != nil {
					recordErr(err.Error())
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				d := time.Since(t0)
				totalNs.Add(d.Nanoseconds())
				sampleMu.Lock()
				samples = append(samples, sample{lat: d, trace: resp.Header.Get("X-Trace-Id")})
				sampleMu.Unlock()
				switch {
				case resp.StatusCode == http.StatusOK:
					okCount.Add(1)
					if st := resp.Header.Get("X-Plancache"); st == "hit" || st == "dedup" || st == "hot" || st == "peer" {
						hits.Add(1)
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					recordErr(fmt.Sprintf("status %d", resp.StatusCode))
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	done := okCount.Load() + shed.Load() + failed.Load()
	kind := "requests"
	if cfg.batch > 0 {
		kind = fmt.Sprintf("batches of %d", cfg.batch)
	}
	nonOK := shed.Load() + failed.Load()
	fmt.Fprintf(out, "loadgen: %d %s in %v (%.0f/s), %d ok, %d non-2xx (%d shed, %d failed)\n",
		done, kind, wall.Round(time.Millisecond), float64(done)/wall.Seconds(),
		okCount.Load(), nonOK, shed.Load(), failed.Load())
	if len(samples) > 0 {
		lats := make([]time.Duration, len(samples))
		var maxLat time.Duration
		for i, sm := range samples {
			lats[i] = sm.lat
			if sm.lat > maxLat {
				maxLat = sm.lat
			}
		}
		ps := obs.Percentiles(lats, 50, 95, 99)
		fmt.Fprintf(out, "loadgen: latency mean %v p50 %v p95 %v p99 %v max %v\n",
			(time.Duration(totalNs.Load()) / time.Duration(len(samples))).Round(time.Microsecond),
			ps[0].Round(time.Microsecond), ps[1].Round(time.Microsecond),
			ps[2].Round(time.Microsecond), maxLat.Round(time.Microsecond))
		if ok := okCount.Load(); ok > 0 {
			fmt.Fprintf(out, "loadgen: cache hits %d/%d (%.0f%%)\n",
				hits.Load(), ok, 100*float64(hits.Load())/float64(ok))
		}
		// The slowest requests by trace ID: paste one into
		// GET /debug/flightrec?trace=<id> for the full span tree.
		sort.Slice(samples, func(i, j int) bool { return samples[i].lat > samples[j].lat })
		top := samples
		if len(top) > slowestTraces {
			top = top[:slowestTraces]
		}
		for _, sm := range top {
			if sm.trace != "" {
				fmt.Fprintf(out, "loadgen: slow trace %s %v\n", sm.trace, sm.lat.Round(time.Microsecond))
			}
		}
	}
	if failed.Load() > 0 {
		msg := "see statuses above"
		if m := firstErr.Load(); m != nil {
			msg = *m
		}
		return fmt.Errorf("loadgen: %d requests failed (first: %s)", failed.Load(), msg)
	}
	if errors.Is(ctx.Err(), context.Canceled) {
		return nil
	}
	return ctx.Err()
}

// slowestTraces is how many slowest-request trace IDs the loadgen prints.
const slowestTraces = 5
