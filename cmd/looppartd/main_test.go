package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"looppart"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a stop function that triggers the graceful-shutdown path and
// waits for it.
func startDaemon(t *testing.T, extraArgs ...string) (url string, stop func() (string, error)) {
	t.Helper()
	dir := t.TempDir()
	portfile := filepath.Join(dir, "port")
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-portfile", portfile}, extraArgs...)
	go func() { done <- run(ctx, args, &out) }()

	deadline := time.Now().Add(10 * time.Second)
	var addr []byte
	for {
		var err error
		if addr, err = os.ReadFile(portfile); err == nil && len(addr) > 0 {
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never wrote its portfile (output: %s)", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "http://" + string(addr), func() (string, error) {
		cancel()
		select {
		case err := <-done:
			return out.String(), err
		case <-time.After(20 * time.Second):
			t.Fatal("daemon did not shut down")
			return out.String(), nil
		}
	}
}

func TestDaemonServesAndShutsDownCleanly(t *testing.T) {
	url, stop := startDaemon(t)

	body, _ := json.Marshal(looppart.PlanRequest{
		Source: "doall (i, 1, 64)\n A[i] = B[i+1]\nenddoall", Procs: 8, Strategy: "rect",
	})
	var payloads [2][]byte
	var statuses [2]string
	for i := range payloads {
		resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		payloads[i], _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, payloads[i])
		}
		statuses[i] = resp.Header.Get("X-Plancache")
	}
	if statuses[0] != "miss" || statuses[1] != "hit" {
		t.Errorf("statuses = %v, want [miss hit]", statuses)
	}
	if !bytes.Equal(payloads[0], payloads[1]) {
		t.Error("hit response differs from miss response")
	}

	hz, err := http.Get(url + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hz, err)
	}
	hz.Body.Close()
	m, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(m.Body)
	m.Body.Close()
	if !strings.Contains(string(metrics), "plancache_hits 1") {
		t.Errorf("metrics lack the cache-hit counter:\n%s", metrics)
	}

	out, err := stop()
	if err != nil {
		t.Fatalf("daemon exited with %v (output: %s)", err, out)
	}
	if !strings.Contains(out, "served 2 requests (1 searches, 1 cache hits)") {
		t.Errorf("shutdown summary missing or wrong:\n%s", out)
	}
}

func TestDaemonWritesObservabilityFilesOnShutdown(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	url, stop := startDaemon(t, "-trace", tracePath, "-metrics", metricsPath)

	body, _ := json.Marshal(looppart.PlanRequest{
		Source: "doall (i, 1, 32)\n A[i] = B[i]\nenddoall", Procs: 4,
	})
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := stop(); err != nil {
		t.Fatal(err)
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil || !bytes.HasPrefix(bytes.TrimSpace(trace), []byte("[")) {
		t.Errorf("trace file: %v %q", err, trace)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	mdata, err := os.ReadFile(metricsPath)
	if err != nil || json.Unmarshal(mdata, &snap) != nil || snap.Counters["server.requests"] != 1 {
		t.Errorf("metrics file: %v %s", err, mdata)
	}
}

func TestLoadgenAgainstDaemon(t *testing.T) {
	url, stop := startDaemon(t)
	defer stop()

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-loadgen", "-url", url, "-n", "20", "-c", "4", "-procs", "8", "example2",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v (output: %s)", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "20 requests") || !strings.Contains(s, "20 ok") {
		t.Errorf("loadgen summary:\n%s", s)
	}
	// 1 search, 19 served from cache/singleflight.
	if !strings.Contains(s, "cache hits 19/20") {
		t.Errorf("loadgen hit accounting:\n%s", s)
	}
	// The latency report carries percentiles, and the slowest requests
	// are named by the trace ID the daemon echoed, for /debug/flightrec.
	for _, want := range []string{"0 non-2xx", "p50 ", "p95 ", "p99 ", "loadgen: slow trace "} {
		if !strings.Contains(s, want) {
			t.Errorf("loadgen report lacks %q:\n%s", want, s)
		}
	}
}

// TestLoadgenFailedRequestsExitNonZero: a request the daemon rejects
// (unknown strategy → 422) counts as failed and makes the loadgen's run
// return an error, so scripted drivers cannot miss a broken workload.
func TestLoadgenFailedRequestsExitNonZero(t *testing.T) {
	url, stop := startDaemon(t)
	defer stop()

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-loadgen", "-url", url, "-n", "4", "-c", "2", "-procs", "8", "-strategy", "nope", "example2",
	}, &out)
	if err == nil {
		t.Fatalf("loadgen with failing requests returned nil error (output: %s)", out.String())
	}
	if !strings.Contains(err.Error(), "4 requests failed") {
		t.Errorf("loadgen error = %v, want the failure count", err)
	}
	if !strings.Contains(out.String(), "4 non-2xx (0 shed, 4 failed)") {
		t.Errorf("loadgen non-2xx accounting:\n%s", out.String())
	}
}

func TestLoadgenBatchMode(t *testing.T) {
	url, stop := startDaemon(t)
	defer stop()

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-loadgen", "-url", url, "-n", "5", "-c", "2", "-batch", "4", "-procs", "8", "example2",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen -batch: %v (output: %s)", err, out.String())
	}
	if !strings.Contains(out.String(), "batches of 4") {
		t.Errorf("loadgen batch summary:\n%s", out.String())
	}
}

func TestLoadgenValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-loadgen"}, io.Discard); err == nil {
		t.Error("loadgen without -url accepted")
	}
	if err := run(context.Background(), []string{"-loadgen", "-url", "http://x", "-n", "0"}, io.Discard); err == nil {
		t.Error("loadgen with -n 0 accepted")
	}
	if err := run(context.Background(), []string{"extra-arg"}, io.Discard); err == nil {
		t.Error("serve mode with a positional argument accepted")
	}
}

// TestDaemonStoreSurvivesRestart is the persistence acceptance criterion
// at the daemon level: a daemon restarted against a populated -store
// serves its first repeat request as a byte-identical hit without
// re-running the search.
func TestDaemonStoreSurvivesRestart(t *testing.T) {
	storeDir := t.TempDir()
	body, _ := json.Marshal(looppart.PlanRequest{
		Source: "doall (i, 1, 64)\n A[i] = B[i+1]\nenddoall", Procs: 8, Strategy: "rect",
	})
	post := func(url string) (string, []byte) {
		resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d (%s)", resp.StatusCode, data)
		}
		return resp.Header.Get("X-Plancache"), data
	}

	url1, stop1 := startDaemon(t, "-store", storeDir)
	status1, payload1 := post(url1)
	if status1 != "miss" {
		t.Fatalf("cold daemon served %q, want miss", status1)
	}
	if out, err := stop1(); err != nil {
		t.Fatalf("first daemon exit: %v (%s)", err, out)
	}

	url2, stop2 := startDaemon(t, "-store", storeDir)
	defer stop2()
	status2, payload2 := post(url2)
	if status2 != "hit" {
		t.Errorf("restarted daemon served %q, want hit (no re-search)", status2)
	}
	if !bytes.Equal(payload1, payload2) {
		t.Errorf("restarted response differs:\n%s\nvs\n%s", payload1, payload2)
	}
}

// The -autotune and -calibrate flags switch the daemon to measured
// tournaments; served plans carry the autotuned marker.
func TestDaemonAutotuneMode(t *testing.T) {
	url, stop := startDaemon(t, "-autotune", "3", "-calibrate", "sim")
	defer stop()

	body, _ := json.Marshal(looppart.PlanRequest{
		Source: "doall (i, 1, 32)\n doall (j, 1, 32)\n  A[i,j] = B[i,j] + B[i+1,j+3]\n enddoall\nenddoall",
		Procs:  8, Strategy: "rect",
	})
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, data)
	}
	var res looppart.PlanResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Autotuned || res.MeasuredMisses <= 0 {
		t.Errorf("autotuned daemon served %+v, want autotuned with measured misses", res)
	}
}

func TestDaemonRejectsBadCalibrateMode(t *testing.T) {
	err := run(context.Background(), []string{"-calibrate", "guesswork"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "calibrate") {
		t.Errorf("bad -calibrate mode: %v", err)
	}
}
