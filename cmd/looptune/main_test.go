package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"looppart"
	"looppart/internal/autotune"
)

func TestRunCalibrationOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-calibrate", "sim"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "fp") {
		t.Errorf("calibration output %q does not start with a fingerprint ID", out)
	}
	if !strings.Contains(out, "source sim") {
		t.Errorf("calibration output %q does not name its source", out)
	}
}

func TestRunTournamentTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-procs", "4", "-k", "3", "-param", "N=12", "example8"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"calibration:", "winner", "rank"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-procs", "4", "-k", "3", "-param", "N=12", "-json", "example8"}, &buf); err != nil {
		t.Fatal(err)
	}
	var res autotune.Result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("undecodable -json output: %v\n%s", err, buf.String())
	}
	if len(res.Candidates) < 2 {
		t.Fatalf("tournament ran %d candidates", len(res.Candidates))
	}
	w := res.Candidates[res.Winner]
	if w.MeasuredMisses > res.Candidates[0].MeasuredMisses {
		t.Errorf("winner measured %d misses, analytic candidate %d",
			w.MeasuredMisses, res.Candidates[0].MeasuredMisses)
	}
}

// -store persists the canonical plan encoding, so a service (and hence a
// daemon) opened over the same directory serves it as a warm hit.
func TestRunStorePersistsServablePlan(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-procs", "4", "-k", "3", "-param", "N=12", "-store", dir, "example8"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stored tuned plan under ") {
		t.Errorf("output lacks store confirmation:\n%s", buf.String())
	}

	store, err := autotune.OpenStore(dir, autotune.ModelFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	svc := looppart.NewService(looppart.ServiceOptions{Store: store})
	if got := svc.Stats().WarmLoaded; got != 1 {
		t.Fatalf("warm-loaded %d entries, want 1", got)
	}
	src, err := loadProgram("example8")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Plan(context.Background(), looppart.PlanRequest{
		Source: src, Params: map[string]int64{"N": 12, "T": 4}, Procs: 4, Strategy: "rect",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "hit" {
		t.Errorf("stored plan served as %q, want hit", resp.Status)
	}
	if !resp.Result.Autotuned {
		t.Error("stored plan not marked autotuned")
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nest.loop")
	src := "doall (i, 1, N)\n  doall (j, 1, N)\n    A[i,j] = A[i,j] + B[i+1,j]\n  enddoall\nenddoall\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-procs", "4", "-param", "N=10", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "winner") {
		t.Errorf("file-run output lacks a winner:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"bad calibrate mode": {"-calibrate", "hardware", "example8"},
		"two positional":     {"example8", "example2"},
		"bad strategy":       {"-strategy", "diagonal", "example8"},
		"unknown program":    {"no-such-example"},
		"bad param":          {"-param", "N", "example8"},
	}
	for name, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", name, args)
		}
	}
}
