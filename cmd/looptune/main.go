// Command looptune runs the autotune pipeline offline: calibrate the
// machine model, race the analytic search's top-K candidate plans through
// measured replay, and print the predicted-vs-measured report. With
// -store, the winner is persisted so a looppartd daemon pointed at the
// same directory serves it without searching.
//
// Usage:
//
//	looptune [flags] <file.loop | example-name | ->
//
// Flags:
//
//	-procs P        number of processors (default 16)
//	-strategy S     rect | skewed (default rect)
//	-k K            tournament size: top-K analytic candidates (default 4)
//	-maxskew M      skew entry bound for -strategy skewed (default 3)
//	-cache-lines N  finite simulated caches of N lines (0 = infinite)
//	-param N=V      bind a loop-bound parameter (repeatable)
//	-calibrate MODE model (paper defaults) | sim (fit by microbenchmark) |
//	                host (wall-clock stride probe; nondeterministic)
//	-exec           also time each candidate on real goroutines
//	-store DIR      persist the winner into a tuned-plan store
//	-json           emit the tournament result as JSON instead of a table
//	-trace FILE     write a Chrome trace-event JSON file
//	-metrics FILE   write a metrics dump (.json = JSON, else text)
//	-pprof ADDR     serve net/http/pprof on ADDR
//
//	looptune -calibrate MODE (no nest argument) prints the fingerprint
//	and exits — the calibration smoke in CI runs exactly this.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"looppart"
	"looppart/internal/autotune"
	"looppart/internal/cliflag"
	"looppart/internal/paperex"
	"looppart/internal/telemetry"
)

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprint(map[string]int64(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p[name] = v
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "looptune:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("looptune", flag.ContinueOnError)
	procs := fs.Int("procs", 16, "number of processors")
	strategy := fs.String("strategy", "rect", "tournament strategy: rect or skewed")
	k := fs.Int("k", 4, "tournament size: top-K analytic candidates")
	maxSkew := fs.Int64("maxskew", 3, "skew entry bound for -strategy skewed")
	cacheLines := fs.Int("cache-lines", 0, "finite simulated caches of N lines (0 = infinite)")
	calibrate := fs.String("calibrate", "model", "cost constants: model, sim, or host")
	execFlag := fs.Bool("exec", false, "also time each candidate on real goroutines")
	storeDir := fs.String("store", "", "persist the winner into this tuned-plan store")
	asJSON := fs.Bool("json", false, "emit the tournament result as JSON")
	params := paramFlags{"N": 64, "T": 4}
	fs.Var(params, "param", "loop-bound parameter NAME=VALUE (repeatable)")
	var obs cliflag.Obs
	obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg, err := obs.Setup()
	if err != nil {
		return err
	}
	prev := telemetry.SetActive(reg)
	defer telemetry.SetActive(prev)

	fp, err := fingerprintFor(*calibrate)
	if err != nil {
		return err
	}

	if fs.NArg() == 0 {
		// Calibration-only mode: report the fingerprint and stop.
		fmt.Fprintln(out, fp.String())
		return obs.Flush(reg)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one program file, example name, or - for stdin")
	}
	src, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := looppart.Parse(src, params)
	if err != nil {
		return err
	}

	res, err := autotune.RunTournament(prog.Analysis, autotune.TournamentOptions{
		Procs:       *procs,
		Strategy:    *strategy,
		K:           *k,
		MaxSkew:     *maxSkew,
		Fingerprint: fp,
		CacheLines:  *cacheLines,
		Exec:        *execFlag,
	})
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "calibration: %s\n\n", fp.String())
		fmt.Fprint(out, res.Report())
		if *execFlag {
			fmt.Fprintln(out, "\nwall clock (reported only; selection is by simulated misses):")
			for _, c := range res.Candidates {
				fmt.Fprintf(out, "  rank %d %-20s %d ns\n", c.Rank, c.TileDesc, c.ExecNs)
			}
		}
	}

	if *storeDir != "" {
		// Persist through the Service so the stored bytes are the canonical
		// plan encoding a looppartd daemon warm-starts from and serves.
		store, err := autotune.OpenStore(*storeDir, fp)
		if err != nil {
			return err
		}
		svc := looppart.NewService(looppart.ServiceOptions{
			Store:              store,
			AutotuneK:          *k,
			Fingerprint:        fp,
			AutotuneCacheLines: *cacheLines,
		})
		resp, err := svc.Plan(context.Background(), looppart.PlanRequest{
			Source:   src,
			Params:   params,
			Procs:    *procs,
			Strategy: *strategy,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nstored tuned plan under %s (%s)\n", resp.Key, fp.ID())
	}
	return obs.Flush(reg)
}

// fingerprintFor maps the -calibrate mode to a fingerprint.
func fingerprintFor(mode string) (autotune.Fingerprint, error) {
	switch mode {
	case "model", "":
		return autotune.ModelFingerprint(), nil
	case "sim":
		return autotune.Calibrate(autotune.CalibrateOptions{})
	case "host":
		return autotune.Calibrate(autotune.CalibrateOptions{Host: true})
	default:
		return autotune.Fingerprint{}, fmt.Errorf("unknown -calibrate mode %q (want model, sim, or host)", mode)
	}
}

func loadProgram(arg string) (string, error) {
	if arg == "-" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	if src, ok := paperex.All[strings.ToLower(arg)]; ok {
		return src, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		names := make([]string, 0, len(paperex.All))
		for n := range paperex.All {
			names = append(names, n)
		}
		return "", fmt.Errorf("%v (or use a built-in example: %s)", err, strings.Join(names, ", "))
	}
	return string(data), nil
}
