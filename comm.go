package looppart

import (
	"context"

	"looppart/internal/commsets"
	"looppart/internal/msgexec"
	"looppart/internal/tile"
)

// CommSets computes the plan's exact per-tile communication sets: for
// every uniformly intersecting reference class, which elements each
// processor produces that other processors consume, with exact counts
// (internal/commsets). Materialize in opts to also get the element
// lists (needed to drive the message-passing executor).
func (p *Plan) CommSets(opts commsets.Options) (*commsets.Analysis, error) {
	return p.CommSetsCtx(context.Background(), opts)
}

// CommSetsCtx is CommSets with request-scoped tracing: when ctx carries
// an obs.Trace, the analysis records a "commsets.analyze" span.
func (p *Plan) CommSetsCtx(ctx context.Context, opts commsets.Options) (*commsets.Analysis, error) {
	if !p.Concrete() {
		return nil, p.errSymbolicPlan()
	}
	spec := commsets.Spec{
		Analysis: p.Program.Analysis,
		Space:    tile.BoundsOf(p.Program.Nest),
		Procs:    p.Procs,
		Tile:     p.Tile,
		Assign:   p.assign,
	}
	return commsets.ComputeCtx(ctx, spec, opts)
}

// CommSummary is the compact digest of CommSets that the planning
// service attaches to PlanResult when communication certification is
// enabled.
func (p *Plan) CommSummary(ctx context.Context) (*commsets.Summary, error) {
	a, err := p.CommSetsCtx(ctx, commsets.Options{})
	if err != nil {
		return nil, err
	}
	return a.Summary(), nil
}

// ExecuteMessagePassing runs the plan under the explicit
// message-passing executor (internal/msgexec): private per-processor
// stores, bulk-synchronous epochs, and exchanges that move exactly the
// transfer sets CommSets predicts. The report carries the measured word
// count (Run errors if it disagrees with the prediction) and whether
// the final state was verified against the sequential execution.
func (p *Plan) ExecuteMessagePassing() (*msgexec.Report, error) {
	comm, err := p.CommSets(commsets.Options{Materialize: true})
	if err != nil {
		return nil, err
	}
	return msgexec.Run(p.Program.Nest, p.assign, comm)
}
