// Skewed reproduces the paper's Example 3: a loop where every rectangular
// partition pays communication that a parallelogram (skewed) partition
// internalizes — and where a hyperplane partition along (−3,1) is in fact
// communication-free.
//
// Run:
//
//	go run ./examples/skewed
package main

import (
	"fmt"
	"log"

	"looppart"
)

func main() {
	src := `
doall (i, 1, N)
  doall (j, 1, N)
    A[i,j] = B[i,j] + B[i+1,j+3]
  enddoall
enddoall`

	prog, err := looppart.Parse(src, map[string]int64{"N": 36})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog.Report())
	fmt.Println()

	for _, s := range []looppart.Strategy{looppart.Rect, looppart.Skewed, looppart.CommFree} {
		plan, err := prog.Partition(12, s)
		if err != nil {
			log.Fatal(err)
		}
		m, err := plan.Simulate(looppart.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		shape := "slabs along " + fmt.Sprint(plan.Slab)
		if plan.Tile != nil {
			shape = plan.Tile.String()
		}
		fmt.Printf("%-9s %-28s misses/proc=%.1f shared=%d\n",
			s, shape, m.MissesPerProc(), m.SharedData)
	}

	fmt.Println("\nthe B reuse direction is (1,3): rectangular tiles cut it;")
	fmt.Println("tiles (or slabs) aligned with it internalize the reuse entirely.")
}
