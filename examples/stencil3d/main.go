// Stencil3d reproduces the paper's Example 8: a 3-D stencil whose optimal
// rectangular tiles have extents in the ratio 2:3:4, then generates the Go
// kernel for the chosen tile.
//
// Run:
//
//	go run ./examples/stencil3d
package main

import (
	"fmt"
	"log"

	"looppart"
	"looppart/internal/codegen"
)

func main() {
	src := `
doall (i, 1, N)
  doall (j, 1, N)
    doall (k, 1, N)
      A[i,j,k] = B[i-1,j,k+1] + B[i,j+1,k] + B[i+1,j-2,k-3]
    enddoall
  enddoall
enddoall`

	prog, err := looppart.Parse(src, map[string]int64{"N": 48})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog.Report())

	// Compare partition shapes for 16 processors on the simulator.
	fmt.Println("\nshape comparison (P=16):")
	for _, s := range []looppart.Strategy{looppart.Rows, looppart.Blocks, looppart.Rect} {
		plan, err := prog.Partition(16, s)
		if err != nil {
			log.Fatal(err)
		}
		m, err := plan.Simulate(looppart.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %-16v misses/proc=%.0f shared=%d\n",
			s, plan.Tile, m.MissesPerProc(), m.SharedData)
	}

	// Execute the optimal plan for real on goroutines.
	plan, err := prog.Partition(16, looppart.Rect)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := plan.Execute(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nparallel execution over goroutines: ok")

	// Emit the tile kernel a compiler back end would produce.
	layouts := map[string]codegen.ArrayLayout{
		"A": {Name: "A", Lo: []int64{0, 0, 0}, Size: []int64{64, 64, 64}},
		"B": {Name: "B", Lo: []int64{-8, -8, -8}, Size: []int64{64, 64, 64}},
	}
	p, err := codegen.Generate(prog.Nest, layouts, codegen.Options{FuncName: "Stencil3D"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated kernel:")
	fmt.Print(p.Source)
}
