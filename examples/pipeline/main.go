// Pipeline walks one program through every stage of the Figure 10
// compiler: parse → reference analysis → loop partitioning → data
// partitioning/alignment (mesh) → code generation → simulation → parallel
// execution, printing each stage's artifact.
//
// Run:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"looppart"
	"looppart/internal/codegen"
)

func main() {
	// A nest beyond Abraham–Hudak's domain: coupled subscripts on C.
	src := `
doall (i, 1, N)
  doall (j, 1, N)
    A[i,j] = B[i-2,j] + B[i,j-1] + C[i+j,j] + C[i+j+1,j+3]
  enddoall
enddoall`

	fmt.Println("── stage 1: parse ──")
	prog, err := looppart.Parse(src, map[string]int64{"N": 48})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog.Nest.String())

	fmt.Println("\n── stage 2: reference analysis ──")
	fmt.Print(prog.Report())

	fmt.Println("\n── stage 3: loop partitioning (P=16) ──")
	plan, err := prog.Partition(16, looppart.Rect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)

	fmt.Println("\n── stage 4: data partitioning & alignment on the mesh ──")
	for _, aligned := range []bool{false, true} {
		m, err := plan.SimulateMesh(looppart.MeshOptions{Aligned: aligned})
		if err != nil {
			log.Fatal(err)
		}
		name := "hashed "
		if aligned {
			name = "aligned"
		}
		fmt.Printf("  %s: local %d, remote %d, hops %d\n",
			name, m.LocalMisses, m.RemoteMisses, m.HopTraffic)
	}

	fmt.Println("\n── stage 5: code generation ──")
	layouts := map[string]codegen.ArrayLayout{
		"A": {Name: "A", Lo: []int64{0, 0}, Size: []int64{64, 64}},
		"B": {Name: "B", Lo: []int64{-4, -4}, Size: []int64{64, 64}},
		"C": {Name: "C", Lo: []int64{0, 0}, Size: []int64{128, 64}},
	}
	kern, err := codegen.Generate(prog.Nest, layouts, codegen.Options{FuncName: "Example9Tile"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(kern.Source)

	fmt.Println("\n── stage 6: simulate (uniform memory) ──")
	m, err := plan.Simulate(looppart.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %v\n", m)

	fmt.Println("\n── stage 7: execute on goroutines ──")
	if _, err := plan.Execute(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ok")
}
