// Datadist demonstrates data partitioning and alignment (§4, footnote 2):
// on a distributed-memory mesh, arrays partitioned with the loop tiles'
// aspect ratios and aligned to their tiles serve most cache misses from
// local memory; hashed placement sends them across the network.
//
// Run:
//
//	go run ./examples/datadist
package main

import (
	"fmt"
	"log"

	"looppart"
)

func main() {
	src := `
doall (i, 1, N)
  doall (j, 1, N)
    A[i,j] = B[i-1,j] + B[i+1,j] + B[i,j-1] + B[i,j+1]
  enddoall
enddoall`

	prog, err := looppart.Parse(src, map[string]int64{"N": 64})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := prog.Partition(16, looppart.Rect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", plan)
	fmt.Println("\nmesh simulation, 16 nodes (4x4), per-hop cost model:")

	for _, aligned := range []bool{false, true} {
		m, err := plan.SimulateMesh(looppart.MeshOptions{Aligned: aligned})
		if err != nil {
			log.Fatal(err)
		}
		name := "hashed placement "
		if aligned {
			name = "aligned placement"
		}
		local := float64(m.LocalMisses) / float64(m.LocalMisses+m.RemoteMisses)
		fmt.Printf("  %s  local=%5.1f%%  hops=%6d  mean access cost=%.2f\n",
			name, 100*local, m.HopTraffic, m.Cost/float64(m.Accesses))
	}

	fmt.Println("\nalignment keeps each tile's footprint in its own memory module;")
	fmt.Println("only the tile-boundary halo goes remote.")
}
