// Quickstart: analyze and partition the paper's Example 2, then check the
// prediction on the simulator.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"looppart"
)

func main() {
	// The paper's Example 2 (§3.1): 100×100 iterations; two references
	// to B whose footprints overlap along the (1,1) lattice direction.
	src := `
doall (i, 101, 200)
  doall (j, 1, 100)
    A[i,j] = B[i+j, i-j-1] + B[i+j+4, i-j+3]
  enddoall
enddoall`

	prog, err := looppart.Parse(src, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The analysis: reference classes, spreads, and closed-form ratios.
	fmt.Print(prog.Report())

	// Partition for 100 processors. Auto discovers that column strips
	// (partition a of the paper's Figure 3) are communication-free.
	plan, err := prog.Partition(100, looppart.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nchosen plan:", plan)

	// Validate on the simulator: the paper's numbers are 104 B-misses
	// per tile for column strips vs 140 for 10×10 blocks.
	for _, s := range []looppart.Strategy{looppart.Columns, looppart.Blocks} {
		p, err := prog.Partition(100, s)
		if err != nil {
			log.Fatal(err)
		}
		m, err := p.Simulate(looppart.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s misses/proc=%.0f (A:100 + B:%0.f)  shared=%d  coherence=%d\n",
			s, m.MissesPerProc(), m.MissesPerProc()-100, m.SharedData, m.CoherenceMisses)
	}
}
