// Matmul reproduces Figure 11 / Appendix A: matrix multiply written with
// fine-grain synchronizing accumulates (l$C[i,j]), partitioned for cache
// locality, executed on goroutines, and verified against a sequential run.
//
// Run:
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"looppart"
	"looppart/internal/exec"
)

const n = 24

func main() {
	src := `
doall (i, 1, N)
  doall (j, 1, N)
    doall (k, 1, N)
      l$C[i,j] = C[i,j] + A[i,k] * B[k,j]
    enddoall
  enddoall
enddoall`

	prog, err := looppart.Parse(src, map[string]int64{"N": n})
	if err != nil {
		log.Fatal(err)
	}

	// The C accumulate is a synchronizing reference: the coherence
	// system treats it as a write (Appendix A), which the analysis and
	// simulator account for.
	fmt.Print(prog.Report())

	fmt.Println("\ntile shapes for P=8 (simulated, atomic refs cost extra):")
	for _, s := range []looppart.Strategy{looppart.Rows, looppart.Rect} {
		plan, err := prog.Partition(8, s)
		if err != nil {
			log.Fatal(err)
		}
		m, err := plan.Simulate(looppart.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s %-18v misses=%d cost=%.0f\n", s, plan.Tile, m.Misses(), m.Cost)
	}

	// Execute in parallel and verify against the sequential semantics.
	plan, err := prog.Partition(8, looppart.Rect)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := exec.StoreFor(prog.Nest)
	if err != nil {
		log.Fatal(err)
	}
	for name, arr := range seq {
		switch name {
		case "C":
			arr.Fill(func([]int64) float64 { return 0 })
		default:
			arr.Fill(func(idx []int64) float64 {
				return float64(idx[0]*31+idx[1]) * 0.125
			})
		}
	}
	par := exec.Store{}
	for name, arr := range seq {
		par[name] = arr.Clone()
	}
	exec.RunSequential(prog.Nest, seq)
	if err := plan.ExecuteOn(par); err != nil {
		log.Fatal(err)
	}
	if !seq["C"].EqualWithin(par["C"], 1e-9) {
		log.Fatal("parallel result differs from sequential")
	}
	fmt.Printf("\nparallel C == sequential C for %dx%d matmul: ok\n", n, n)
	fmt.Printf("C[3,5] = %.3f\n", par["C"].At([]int64{3, 5}))
}
