package looppart

import (
	"fmt"

	"looppart/internal/intmat"
	"looppart/internal/partition"
	"looppart/internal/tile"
	"looppart/internal/verify"
)

// SelfCheck validates the plan against the iteration space it claims to
// cover: every iteration maps to a processor in range, the tiling is a
// disjoint cover with bounded occupancy, and for enumerable tiles the
// footprint model agrees with exact enumeration under the documented
// rules (verify.DefaultTolerance). Large spaces are sampled
// deterministically; the check never panics. Outcomes feed the
// verify.checks / verify.failures telemetry counters.
func (p *Plan) SelfCheck() *verify.Report {
	return verify.CheckPlan(verify.PlanCheck{
		Analysis: p.Program.Analysis,
		Space:    tile.BoundsOf(p.Program.Nest),
		Procs:    p.Procs,
		Assign:   p.assign,
		Tile:     p.Tile,
	})
}

// PlanFromResult reconstructs an executable Plan from a served PlanResult
// — the inverse of the service's encoding. The reconstruction uses only
// the serialized fields (kind, tile extents or matrix, slab normal and
// width), so checking the reconstructed plan checks what was actually
// served, not what the search happened to compute.
func (pr *Program) PlanFromResult(res *PlanResult) (*Plan, error) {
	strategy, ok := ParseStrategy(res.Resolved)
	if !ok {
		return nil, fmt.Errorf("looppart: served plan has unknown resolved strategy %q", res.Resolved)
	}
	if res.Procs < 1 {
		return nil, fmt.Errorf("looppart: served plan has non-positive processor count %d", res.Procs)
	}
	switch res.Kind {
	case "slab":
		space := tile.BoundsOf(pr.Nest)
		sp, err := partition.SlabPlanFor(res.SlabNormal, res.SlabWidth, res.SlabCommFree, space.Lo, space.Hi)
		if err != nil {
			return nil, err
		}
		procs := res.Procs
		plan := &Plan{Program: pr, Strategy: strategy, Procs: procs, Slab: &sp}
		plan.assign = func(p []int64) int { return sp.SlabOf(p, procs) }
		return plan, nil
	case "tile":
		var t tile.Tile
		switch {
		case len(res.TileMatrix) > 0:
			l := intmat.FromRows(res.TileMatrix)
			if l.Rows() != l.Cols() || !l.IsNonsingular() {
				return nil, fmt.Errorf("looppart: served tile matrix %v is not square nonsingular", res.TileMatrix)
			}
			t = tile.Parallelepiped(l)
		case len(res.TileExtents) > 0:
			for _, e := range res.TileExtents {
				if e <= 0 {
					return nil, fmt.Errorf("looppart: served tile has non-positive extent %d", e)
				}
			}
			t = tile.Rect(res.TileExtents...)
		default:
			return nil, fmt.Errorf("looppart: served tile plan has neither extents nor matrix")
		}
		return pr.tilePlan(strategy, res.Procs, t, res.PredictedFootprint, res.PredictedTraffic)
	case "oblivious":
		// The bisection policy is a deterministic function of the analysis
		// and the processor count, so re-derive it and require the served
		// split order (the policy's serialized fingerprint) to match — a
		// mismatch means the source no longer produces the served plan.
		op, err := partition.OptimizeOblivious(pr.Analysis, res.Procs)
		if err != nil {
			return nil, err
		}
		if len(op.Order) != len(res.ObliviousOrder) {
			return nil, fmt.Errorf("looppart: served split order %v has wrong rank for this nest", res.ObliviousOrder)
		}
		for i, d := range op.Order {
			if res.ObliviousOrder[i] != d {
				return nil, fmt.Errorf("looppart: served split order %v no longer matches the nest's derived order %v", res.ObliviousOrder, op.Order)
			}
		}
		if op.Symbolic != res.ObliviousSymbolic {
			return nil, fmt.Errorf("looppart: served plan symbolic=%v but the nest derives symbolic=%v", res.ObliviousSymbolic, op.Symbolic)
		}
		plan := &Plan{Program: pr, Strategy: strategy, Procs: res.Procs, Oblivious: op}
		if !op.Symbolic {
			asg, err := op.Assign(tile.BoundsOf(pr.Nest), res.Procs)
			if err != nil {
				return nil, err
			}
			plan.assign = asg
		}
		return plan, nil
	default:
		return nil, fmt.Errorf("looppart: served plan has unknown kind %q", res.Kind)
	}
}

// Verify re-validates a served plan: it reconstructs the plan from the
// serialized result alone, checks that the reconstruction renders
// byte-identically to the served Rendered string (so the serialized
// fields really determine the plan), and runs the full SelfCheck. The
// request must be the one that produced the result (its source is
// re-parsed to recover the iteration space and reference analysis).
func (s *Service) Verify(req PlanRequest, res *PlanResult) *verify.Report {
	rep := &verify.Report{}
	prog, procs, _, err := s.prepare(req)
	if err != nil {
		rep.Fail("reconstruct", "request no longer parses: "+err.Error())
		return rep
	}
	if procs != res.Procs {
		rep.Fail("reconstruct", fmt.Sprintf("request procs %d != served procs %d", procs, res.Procs))
		return rep
	}
	plan, err := prog.PlanFromResult(res)
	if err != nil {
		rep.Fail("reconstruct", err.Error())
		return rep
	}
	rep.Pass("reconstruct")
	if got := plan.String(); got != res.Rendered {
		rep.Fail("rendered", fmt.Sprintf("reconstructed plan renders %q, served plan rendered %q", got, res.Rendered))
	} else {
		rep.Pass("rendered")
	}
	sc := plan.SelfCheck()
	rep.Checks = append(rep.Checks, sc.Checks...)
	rep.Failures += sc.Failures
	return rep
}
